"""Static semantics of Affi (Fig. 7).

The judgment is ``Δ; Γ; Γ̄; Ω ⊢ e : τ`` where ``Γ`` holds Affi's unrestricted
variables (bound by ``let !x``), ``Γ̄`` the foreign (MiniML) variables, and
``Ω`` the affine variables together with their binding mode (◦ dynamic /
• static).  The declarative environment-splitting premises (``Ω = Ω₁ ⊎ Ω₂``)
are implemented algorithmically: the checker returns the set of affine
variables a subterm actually uses and rejects any term that uses one twice.

The mode-sensitive rules reproduced from the paper:

* a dynamic λ (``⊸``) may not close over *static* affine variables
  (``no•(Ω)``): if it were passed to MiniML and duplicated, those resources
  would be unprotected;
* a static λ (``⊸•``) may close over anything;
* promotion ``!v`` requires the value to use no affine resources at all;
* the boundary embedding a MiniML term may consume affine resources only
  through nested boundaries, and the checker reports them so the enclosing
  term's splitting accounts for them.

Besides the type, the checker records a *resolution* for every variable
occurrence and every application (dynamic vs static arrow) keyed by node
identity — the compiler needs both (Fig. 8 compiles them differently).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional, Tuple

from repro.affi import syntax as ast
from repro.affi import types as ty
from repro.affi.types import Mode
from repro.core.errors import ConvertibilityError, LinearityError, ScopeError, TypeCheckError

UnrestrictedEnv = Dict[str, ty.Type]
AffineEnv = Dict[str, Tuple[ty.Type, Mode]]
ForeignEnv = Dict[str, object]
CheckResult = Tuple[ty.Type, FrozenSet[str]]
BoundaryHook = Callable[[ast.Boundary, UnrestrictedEnv, AffineEnv, ForeignEnv], CheckResult]

#: Resolution recorded for variable occurrences.
UNRESTRICTED = "unrestricted"


@dataclass
class Annotations:
    """Typing information the compiler needs, keyed by AST node identity."""

    variable_resolutions: Dict[int, object] = field(default_factory=dict)
    application_modes: Dict[int, Mode] = field(default_factory=dict)

    def resolve_variable(self, node: ast.Var):
        return self.variable_resolutions.get(id(node))

    def application_mode(self, node: ast.App) -> Optional[Mode]:
        return self.application_modes.get(id(node))


def typecheck(
    term: ast.Expr,
    unrestricted: Optional[UnrestrictedEnv] = None,
    affine: Optional[AffineEnv] = None,
    foreign_env: Optional[ForeignEnv] = None,
    boundary_hook: Optional[BoundaryHook] = None,
    annotations: Optional[Annotations] = None,
) -> ty.Type:
    """Infer the type of ``term`` (raising on affine-usage violations)."""
    inferred, _usage = check_with_usage(term, unrestricted, affine, foreign_env, boundary_hook, annotations)
    return inferred


def check_with_usage(
    term: ast.Expr,
    unrestricted: Optional[UnrestrictedEnv] = None,
    affine: Optional[AffineEnv] = None,
    foreign_env: Optional[ForeignEnv] = None,
    boundary_hook: Optional[BoundaryHook] = None,
    annotations: Optional[Annotations] = None,
) -> CheckResult:
    """Like :func:`typecheck` but also report the affine variables consumed."""
    context = _Context(dict(foreign_env or {}), boundary_hook, annotations or Annotations())
    return _check(term, dict(unrestricted or {}), dict(affine or {}), context)


class _Context:
    def __init__(self, foreign_env: ForeignEnv, hook: Optional[BoundaryHook], annotations: Annotations):
        self.foreign_env = foreign_env
        self.hook = hook
        self.annotations = annotations


def _split(left: FrozenSet[str], right: FrozenSet[str]) -> FrozenSet[str]:
    overlap = left & right
    if overlap:
        raise LinearityError(f"affine variables used more than once: {sorted(overlap)}")
    return left | right


def _static_usage(usage: FrozenSet[str], affine: AffineEnv) -> FrozenSet[str]:
    return frozenset(name for name in usage if name in affine and affine[name][1] is Mode.STATIC)


def _check(term: ast.Expr, unrestricted: UnrestrictedEnv, affine: AffineEnv, context: _Context) -> CheckResult:
    if isinstance(term, ast.UnitLit):
        return ty.UNIT, frozenset()

    if isinstance(term, ast.BoolLit):
        return ty.BOOL, frozenset()

    if isinstance(term, ast.IntLit):
        return ty.INT, frozenset()

    if isinstance(term, ast.Var):
        if term.name in affine:
            affine_type, mode = affine[term.name]
            context.annotations.variable_resolutions[id(term)] = mode
            return affine_type, frozenset({term.name})
        if term.name in unrestricted:
            context.annotations.variable_resolutions[id(term)] = UNRESTRICTED
            return unrestricted[term.name], frozenset()
        raise ScopeError(f"unbound Affi variable {term.name!r}")

    if isinstance(term, ast.Lam):
        body_affine = dict(affine)
        body_affine[term.parameter] = (term.parameter_type, term.mode)
        body_type, usage = _check(term.body, unrestricted, body_affine, context)
        usage_without_parameter = usage - {term.parameter}
        if term.mode is Mode.DYNAMIC:
            captured_static = _static_usage(usage_without_parameter, affine)
            if captured_static:
                raise LinearityError(
                    "a dynamic (⊸) function may not close over static affine variables: "
                    f"{sorted(captured_static)}"
                )
            return ty.DynLolliType(term.parameter_type, body_type), usage_without_parameter
        return ty.StatLolliType(term.parameter_type, body_type), usage_without_parameter

    if isinstance(term, ast.App):
        function_type, function_usage = _check(term.function, unrestricted, affine, context)
        argument_type, argument_usage = _check(term.argument, unrestricted, affine, context)
        if isinstance(function_type, ty.DynLolliType):
            context.annotations.application_modes[id(term)] = Mode.DYNAMIC
        elif isinstance(function_type, ty.StatLolliType):
            context.annotations.application_modes[id(term)] = Mode.STATIC
        else:
            raise TypeCheckError(f"application of a non-function of type {function_type}")
        if argument_type != function_type.argument:
            raise TypeCheckError(f"argument has type {argument_type}, expected {function_type.argument}")
        return function_type.result, _split(function_usage, argument_usage)

    if isinstance(term, ast.Bang):
        body_type, usage = _check(term.body, unrestricted, affine, context)
        if usage:
            raise LinearityError(
                f"!v may not capture affine resources, but uses {sorted(usage)}"
            )
        return ty.BangType(body_type), frozenset()

    if isinstance(term, ast.LetBang):
        bound_type, bound_usage = _check(term.bound, unrestricted, affine, context)
        if not isinstance(bound_type, ty.BangType):
            raise TypeCheckError(f"let ! expects a !τ, got {bound_type}")
        body_unrestricted = dict(unrestricted)
        body_unrestricted[term.name] = bound_type.body
        body_type, body_usage = _check(term.body, body_unrestricted, affine, context)
        return body_type, _split(bound_usage, body_usage)

    if isinstance(term, ast.WithPair):
        left_type, left_usage = _check(term.left, unrestricted, affine, context)
        right_type, right_usage = _check(term.right, unrestricted, affine, context)
        # Additive pair: the components share resources (only one is used).
        return ty.WithType(left_type, right_type), left_usage | right_usage

    if isinstance(term, ast.Proj1):
        body_type, usage = _check(term.body, unrestricted, affine, context)
        if not isinstance(body_type, ty.WithType):
            raise TypeCheckError(f".1 expects an additive pair, got {body_type}")
        return body_type.left, usage

    if isinstance(term, ast.Proj2):
        body_type, usage = _check(term.body, unrestricted, affine, context)
        if not isinstance(body_type, ty.WithType):
            raise TypeCheckError(f".2 expects an additive pair, got {body_type}")
        return body_type.right, usage

    if isinstance(term, ast.TensorPair):
        left_type, left_usage = _check(term.left, unrestricted, affine, context)
        right_type, right_usage = _check(term.right, unrestricted, affine, context)
        return ty.TensorType(left_type, right_type), _split(left_usage, right_usage)

    if isinstance(term, ast.LetTensor):
        bound_type, bound_usage = _check(term.bound, unrestricted, affine, context)
        if not isinstance(bound_type, ty.TensorType):
            raise TypeCheckError(f"let (a, b) expects a tensor, got {bound_type}")
        body_affine = dict(affine)
        body_affine[term.left_name] = (bound_type.left, Mode.STATIC)
        body_affine[term.right_name] = (bound_type.right, Mode.STATIC)
        body_type, body_usage = _check(term.body, unrestricted, body_affine, context)
        return body_type, _split(bound_usage, body_usage - {term.left_name, term.right_name})

    if isinstance(term, ast.If):
        condition_type, condition_usage = _check(term.condition, unrestricted, affine, context)
        if not isinstance(condition_type, ty.BoolType):
            raise TypeCheckError(f"if condition must be bool, got {condition_type}")
        then_type, then_usage = _check(term.then_branch, unrestricted, affine, context)
        else_type, else_usage = _check(term.else_branch, unrestricted, affine, context)
        if then_type != else_type:
            raise TypeCheckError(f"if branches disagree: {then_type} vs {else_type}")
        return then_type, _split(condition_usage, then_usage | else_usage)

    if isinstance(term, ast.Boundary):
        if context.hook is None:
            raise ConvertibilityError(
                "Affi boundary term encountered but no interoperability system is configured"
            )
        return context.hook(term, unrestricted, affine, context.foreign_env)

    raise TypeCheckError(f"unrecognized Affi term {term!r}")
