"""Affi: the affine language of case study 2 (§4)."""

from repro.affi import syntax, types
from repro.affi.compiler import STATIC_SUFFIX, compile_expr, is_static_name, static_name, thunk_guard
from repro.affi.parser import make_parser, parse_expr
from repro.affi.typechecker import UNRESTRICTED, Annotations, check_with_usage, typecheck
from repro.affi.types import (
    BOOL,
    INT,
    UNIT,
    BangType,
    BoolType,
    DynLolliType,
    IntType,
    Mode,
    StatLolliType,
    TensorType,
    Type,
    UnitType,
    WithType,
    parse_type,
)

__all__ = [
    "syntax",
    "types",
    "STATIC_SUFFIX",
    "compile_expr",
    "is_static_name",
    "static_name",
    "thunk_guard",
    "make_parser",
    "parse_expr",
    "UNRESTRICTED",
    "Annotations",
    "check_with_usage",
    "typecheck",
    "BOOL",
    "INT",
    "UNIT",
    "BangType",
    "BoolType",
    "DynLolliType",
    "IntType",
    "Mode",
    "StatLolliType",
    "TensorType",
    "Type",
    "UnitType",
    "WithType",
    "parse_type",
]
