"""The Affi → LCVM compiler (Fig. 8).

The compiler is *mode-directed*: the same source constructs compile
differently depending on whether the affinity involved is enforced
dynamically or statically.

* Dynamic affine variables (bound by ``λa◦``) are bound to a *guard thunk*
  at every call site: ``(e₁ : τ₁ ⊸ τ₂) e₂ ⇝ e₁⁺ (let x = e₂⁺ in thunk(x))``,
  and a use of ``a◦`` forces the thunk (``a◦ ⇝ a◦ ()``), which raises
  ``fail Conv`` the second time (the ``thunk`` macro at the top of Fig. 8).
* Static affine variables (bound by ``λa•`` or tensor destructuring) compile
  to plain variables with **no** runtime overhead — their at-most-once use is
  guaranteed by the type system, and witnessed in the model by phantom flags.

Static binders are marked with :data:`STATIC_SUFFIX` in the generated code so
that the phantom-flag augmented semantics (``repro.interop_affine.phantom``)
can recognize them; the standard semantics ignores the marker entirely.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.affi import syntax as ast
from repro.affi.typechecker import UNRESTRICTED, Annotations, check_with_usage
from repro.affi.types import Mode
from repro.core.errors import CompileError, ErrorCode
from repro.lcvm import syntax as target

BoundaryHook = Callable[[ast.Boundary], target.Expr]

#: Suffix appended to static affine binders in compiled code (model marker).
STATIC_SUFFIX = "@s"

#: Reserved names used by the thunk macro (cannot clash with source variables,
#: which the parser restricts to identifier-like symbols without '%').
_FLAG_NAME = "rfr%thunk"
_IGNORE_NAME = "ignore%thunk"


def static_name(name: str) -> str:
    """The compiled name of a static affine binder."""
    return name + STATIC_SUFFIX


def is_static_name(name: str) -> bool:
    """Recognize compiled static affine binders (used by the phantom semantics)."""
    return name.endswith(STATIC_SUFFIX)


def thunk_guard(body: target.Expr) -> target.Expr:
    """``thunk(e) ≜ let rfr = ref 1 in λ_. {if !rfr {fail Conv} {rfr := 0; e}}``.

    The guard permits exactly one force; the second raises ``fail Conv``.
    """
    return target.Let(
        _FLAG_NAME,
        target.NewRef(target.Int(1)),
        target.Lam(
            _IGNORE_NAME,
            target.If(
                target.Deref(target.Var(_FLAG_NAME)),
                target.Fail(ErrorCode.CONV),
                target.Let("_", target.Assign(target.Var(_FLAG_NAME), target.Int(0)), body),
            ),
        ),
    )


def compile_expr(
    term: ast.Expr,
    annotations: Optional[Annotations] = None,
    boundary_hook: Optional[BoundaryHook] = None,
) -> target.Expr:
    """Compile an Affi term to LCVM.

    ``annotations`` carries the typechecker's variable/application resolutions
    (Fig. 8 needs them to choose between the dynamic and static translations).
    When omitted, the term is typechecked first — which only works for closed
    terms without boundaries.
    """
    if annotations is None:
        annotations = Annotations()
        check_with_usage(term, annotations=annotations)
    return _compile(term, annotations, boundary_hook)


def _compile(term: ast.Expr, annotations: Annotations, hook: Optional[BoundaryHook]) -> target.Expr:
    if isinstance(term, ast.UnitLit):
        return target.Unit()

    if isinstance(term, ast.BoolLit):
        return target.Int(0 if term.value else 1)

    if isinstance(term, ast.IntLit):
        return target.Int(term.value)

    if isinstance(term, ast.Var):
        resolution = annotations.resolve_variable(term)
        if resolution is Mode.DYNAMIC:
            # a◦ ⇝ a◦ () — force the guard thunk.
            return target.App(target.Var(term.name), target.Unit())
        if resolution is Mode.STATIC:
            return target.Var(static_name(term.name))
        if resolution == UNRESTRICTED or resolution is None:
            return target.Var(term.name)
        raise CompileError(f"unknown variable resolution {resolution!r} for {term.name}")

    if isinstance(term, ast.Lam):
        if term.mode is Mode.DYNAMIC:
            return target.Lam(term.parameter, _compile(term.body, annotations, hook))
        return target.Lam(static_name(term.parameter), _compile(term.body, annotations, hook))

    if isinstance(term, ast.App):
        mode = annotations.application_mode(term)
        function = _compile(term.function, annotations, hook)
        argument = _compile(term.argument, annotations, hook)
        if mode is Mode.DYNAMIC or mode is None:
            # (e₁ : τ₁ ⊸ τ₂) e₂ ⇝ e₁⁺ (let x = e₂⁺ in thunk(x))
            return target.App(
                function,
                target.Let("arg%dyn", argument, thunk_guard(target.Var("arg%dyn"))),
            )
        return target.App(function, argument)

    if isinstance(term, ast.Bang):
        return _compile(term.body, annotations, hook)

    if isinstance(term, ast.LetBang):
        return target.Let(
            term.name,
            _compile(term.bound, annotations, hook),
            _compile(term.body, annotations, hook),
        )

    if isinstance(term, ast.WithPair):
        # Additive pairs are lazy: each component is delayed so that only the
        # projected side ever runs (and consumes its resources).
        return target.Pair(
            target.Lam(_IGNORE_NAME, _compile(term.left, annotations, hook)),
            target.Lam(_IGNORE_NAME, _compile(term.right, annotations, hook)),
        )

    if isinstance(term, ast.Proj1):
        return target.App(target.Fst(_compile(term.body, annotations, hook)), target.Unit())

    if isinstance(term, ast.Proj2):
        return target.App(target.Snd(_compile(term.body, annotations, hook)), target.Unit())

    if isinstance(term, ast.TensorPair):
        return target.Pair(_compile(term.left, annotations, hook), _compile(term.right, annotations, hook))

    if isinstance(term, ast.LetTensor):
        bound = _compile(term.bound, annotations, hook)
        body = _compile(term.body, annotations, hook)
        return target.Let(
            "tensor%fresh",
            bound,
            target.Let(
                static_name(term.left_name),
                target.Fst(target.Var("tensor%fresh")),
                target.Let(
                    static_name(term.right_name),
                    target.Snd(target.Var("tensor%fresh")),
                    body,
                ),
            ),
        )

    if isinstance(term, ast.If):
        return target.If(
            _compile(term.condition, annotations, hook),
            _compile(term.then_branch, annotations, hook),
            _compile(term.else_branch, annotations, hook),
        )

    if isinstance(term, ast.Boundary):
        if hook is None:
            raise CompileError(
                "Affi boundary term encountered but no interoperability system is configured"
            )
        return hook(term)

    raise CompileError(f"unrecognized Affi term {term!r}")
