"""The differential fuzzing subsystem: generator, oracle, shrinker, corpus.

Covers the satellite contract for `src/repro/fuzz/`:

* generation is byte-for-byte deterministic under a fixed seed;
* every generated program typechecks — or, for tagged expected-failure
  cases, fails with exactly the tagged structured error class;
* the greedy shrinker minimizes a planted synthetic mismatch to a strictly
  smaller program that still exhibits the same disagreement;
* corpus persistence round-trips (save → load → re-judge);
* the legacy ``util.workloads`` programs, promoted to corpus entries, still
  produce identical results on every backend (the regression half of the
  promotion);

plus the serving-side QoS mechanics the same PR added: priority-class →
weight mapping, weighted slice granting in the driver, and scheduler-level
outcome invariance under weights.
"""

import random

import pytest

from repro.fuzz import (
    DifferentialOracle,
    Disagreement,
    FuzzCase,
    FuzzGenerator,
    Node,
    leaf,
    legacy_corpus_entries,
    load_corpus,
    make_systems,
    same_axis_predicate,
    save_counterexample,
    shrink,
)
from repro.fuzz.generator import TEMPLATES
from repro.serve import (
    PRIORITY_WEIGHTS,
    Request,
    StepSlicedDriver,
    make_default_scheduler,
    priority_weight,
)

SEED = 20260808
SAMPLE = 45  # 15 per system: every kind appears at this size


@pytest.fixture(scope="module")
def systems():
    return make_systems()


@pytest.fixture(scope="module")
def oracle(systems):
    return DifferentialOracle(systems=systems, rng=random.Random(SEED))


def _case_fingerprint(case):
    return (case.system, case.language, case.source, case.kind, case.expected_error, case.fuel)


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------


def test_generation_is_deterministic_under_a_fixed_seed():
    first = [_case_fingerprint(case) for case in FuzzGenerator(seed=SEED).generate(SAMPLE)]
    second = [_case_fingerprint(case) for case in FuzzGenerator(seed=SEED).generate(SAMPLE)]
    assert first == second
    different = [_case_fingerprint(case) for case in FuzzGenerator(seed=SEED + 1).generate(SAMPLE)]
    assert first != different


def test_generator_covers_all_systems_and_kinds():
    cases = FuzzGenerator(seed=SEED).take(SAMPLE)
    assert {case.system for case in cases} == {"refs", "affine", "l3"}
    assert {case.kind for case in cases} == {"ok", "divergent", "static-error"}


def test_generated_programs_typecheck_or_fail_with_the_tagged_error(systems):
    for case in FuzzGenerator(seed=SEED).generate(SAMPLE):
        system = systems[case.system]
        if case.kind == "static-error":
            with pytest.raises(Exception) as caught:
                system.compile_source(case.language, case.source)
            assert type(caught.value).__name__ == case.expected_error, case.source
        else:
            system.compile_source(case.language, case.source)  # must not raise


def test_ok_cases_run_clean_and_divergent_cases_exhaust_fuel(systems):
    for case in FuzzGenerator(seed=SEED).take(SAMPLE):
        if case.kind == "static-error":
            continue
        result = systems[case.system].run_source(case.language, case.source, fuel=case.fuel)
        if case.kind == "divergent":
            assert str(result.failure) == "out_of_fuel", case.source
        # "ok" cases may still fail *dynamically* (e.g. an index check) — the
        # oracle only requires every backend to fail identically — but the
        # generator's int-typed templates never diverge:
        else:
            assert str(result.failure) != "out_of_fuel", case.source


def test_generated_trees_respect_the_size_bound():
    generator = FuzzGenerator(seed=SEED, max_nodes=6)
    for case in generator.generate(60):
        if case.tree is not None:
            assert case.tree.size() <= 6
            assert case.tree.render() == case.source


# ---------------------------------------------------------------------------
# Oracle
# ---------------------------------------------------------------------------


def test_oracle_agrees_on_a_generated_sample(oracle):
    for case in FuzzGenerator(seed=SEED).generate(SAMPLE):
        disagreement = oracle.check(case)
        assert disagreement is None, disagreement.summary()


def test_oracle_flags_a_wrongly_tagged_static_error(oracle):
    mistagged = FuzzCase(
        system="refs",
        language="RefLL",
        source="(+ 1 (lam (x int) x))",  # really a TypeCheckError
        kind="static-error",
        expected_error="ScopeError",
    )
    disagreement = oracle.check(mistagged)
    assert disagreement is not None and disagreement.axis == "frontend"
    assert disagreement.details["raised"] == "TypeCheckError"


def test_oracle_flags_a_well_typed_program_tagged_as_failing(oracle):
    mistagged = FuzzCase(
        system="l3",
        language="MiniML",
        source="(+ 1 2)",
        kind="static-error",
        expected_error="TypeCheckError",
    )
    disagreement = oracle.check(mistagged)
    assert disagreement is not None and disagreement.axis == "frontend"
    assert disagreement.details["raised"] is None


def test_oracle_flags_a_converging_program_tagged_divergent(oracle):
    mistagged = FuzzCase(
        system="affine", language="MiniML", source="(+ 1 2)", kind="divergent", fuel=2_000
    )
    disagreement = oracle.check(mistagged)
    assert disagreement is not None and disagreement.axis == "divergence"


# ---------------------------------------------------------------------------
# Shrinker
# ---------------------------------------------------------------------------


def _planted_case():
    """A bulky tree whose 'disagreement' is containing a boundary crossing."""
    cross = TEMPLATES["refs"][0]  # (+ 1 (boundary int (if (boundary bool {0}) false true)))
    add = TEMPLATES["refs"][1]
    churn = TEMPLATES["refs"][3]
    tree = Node(
        template=add,
        children=(
            Node(template=churn, children=(leaf(3),)),
            Node(
                template=add,
                children=(
                    Node(template=cross, children=(Node(template=add, children=(leaf(1), leaf(2))),)),
                    Node(template=churn, children=(leaf(7),)),
                ),
            ),
        ),
    )
    return FuzzCase(
        system="refs", language="RefLL", source=tree.render(), kind="ok", tree=tree
    )


def test_shrinker_minimizes_a_planted_synthetic_mismatch():
    case = _planted_case()

    def planted_mismatch(candidate):
        return "(boundary" in candidate.source

    assert planted_mismatch(case)
    shrunk = shrink(case, planted_mismatch)
    assert planted_mismatch(shrunk)  # same disagreement...
    assert shrunk.tree.size() < case.tree.size()  # ...on a smaller program
    # Greedy fixpoint: the crossing template with a literal hole is the
    # 2-node minimum for this predicate, and no single rewrite goes lower.
    assert shrunk.tree.size() == 2
    assert shrunk.source == shrunk.tree.render()


def test_shrinker_returns_treeless_cases_unchanged():
    case = FuzzCase(system="refs", language="RefLL", source="(+ 1 2)", kind="ok")
    assert shrink(case, lambda candidate: True) is case


def test_shrinker_same_axis_predicate_tracks_the_oracle(oracle):
    predicate = same_axis_predicate(oracle, "frontend")
    mistagged = FuzzCase(
        system="refs", language="RefLL", source="(+ 1 (lam (x int) x))",
        kind="static-error", expected_error="ScopeError",
    )
    agreed = FuzzCase(system="refs", language="RefLL", source="(+ 1 2)", kind="ok")
    assert predicate(mistagged)
    assert not predicate(agreed)


# ---------------------------------------------------------------------------
# Corpus
# ---------------------------------------------------------------------------


def test_corpus_round_trips_a_persisted_counterexample(tmp_path, oracle):
    case = FuzzCase(
        system="affine",
        language="MiniML",
        source="(+ 1 2)",
        kind="static-error",
        expected_error="TypeCheckError",
        seed=SEED,
        index=3,
    )
    disagreement = Disagreement(case, "frontend", {"raised": None})
    path = save_counterexample(str(tmp_path), disagreement)
    loaded = load_corpus(str(tmp_path))
    assert len(loaded) == 1
    assert _case_fingerprint(loaded[0]) == _case_fingerprint(case)
    assert loaded[0].tree is None  # replay needs no tree
    # Re-judging the loaded case reproduces the same axis of disagreement.
    rejudged = oracle.check(loaded[0])
    assert rejudged is not None and rejudged.axis == "frontend"
    # Content-addressed: saving the same case again is idempotent.
    assert save_counterexample(str(tmp_path), disagreement) == path
    assert len(load_corpus(str(tmp_path))) == 1


def test_load_corpus_of_a_missing_directory_is_empty(tmp_path):
    assert load_corpus(str(tmp_path / "never-created")) == []


def test_legacy_workloads_agree_on_all_backends(oracle):
    """The promotion's regression half: the original hand-written scenario
    suite, now parametrized corpus entries, passes the full four-axis
    differential on every backend."""
    entries = legacy_corpus_entries(depths=(2, 6))
    assert {entry.system for entry in entries} == {"refs", "affine", "l3"}
    for entry in entries:
        disagreement = oracle.check(entry)
        assert disagreement is None, disagreement.summary()


# ---------------------------------------------------------------------------
# QoS: priority classes, weighted driver, outcome invariance
# ---------------------------------------------------------------------------


def test_priority_classes_map_to_documented_weights():
    assert priority_weight("high") == PRIORITY_WEIGHTS["high"] == 8
    assert priority_weight("standard") == PRIORITY_WEIGHTS["standard"] == 2
    assert priority_weight("best-effort") == PRIORITY_WEIGHTS["best-effort"] == 1
    assert priority_weight(5) == 5
    assert Request(language="RefLL", source="1").priority_weight == 2  # default class
    for bad in ("urgent", 0, -1, True):
        with pytest.raises(ValueError):
            priority_weight(bad)


class _CountingExecution:
    """Finishes after ``total`` step_n calls, logging each grant globally."""

    def __init__(self, name, total, log):
        self.name = name
        self.remaining = total
        self.log = log

    def step_n(self, limit):
        self.log.append(self.name)
        self.remaining -= 1
        return "done" if self.remaining <= 0 else None


def test_driver_grants_weighted_consecutive_slices():
    log = []
    heavy = _CountingExecution("heavy", 6, log)
    light = _CountingExecution("light", 2, log)
    driver = StepSlicedDriver(slice_steps=4)
    driven = driver.run_batch([heavy, light], weights=[3, 1])
    # Turn 1: heavy x3, light x1; turn 2: heavy x3 (finishes), light x1 (finishes).
    assert log == ["heavy", "heavy", "heavy", "light", "heavy", "heavy", "heavy", "light"]
    assert [outcome.slices for outcome in driven] == [6, 2]


def test_driver_default_weights_are_round_robin():
    log = []
    a = _CountingExecution("a", 2, log)
    b = _CountingExecution("b", 2, log)
    assert StepSlicedDriver(slice_steps=4).run_batch([a, b])
    assert log == ["a", "b", "a", "b"]


def test_driver_rejects_bad_weights():
    driver = StepSlicedDriver(slice_steps=4)
    with pytest.raises(ValueError):
        driver.run_batch([_CountingExecution("x", 1, [])], weights=[0])
    with pytest.raises(ValueError):
        driver.run_batch([_CountingExecution("x", 1, [])], weights=[1, 2])


def test_scheduler_outcomes_are_invariant_under_priorities():
    scheduler = make_default_scheduler(slice_steps=16)
    entries = legacy_corpus_entries(depths=(4,))
    requests = [
        Request(
            language=entry.language,
            source=entry.source,
            system=entry.system,
            priority=priority,
            request_id=f"{entry.system}-{priority}",
        )
        for entry in entries
        for priority in ("high", "standard", "best-effort")
    ]
    sequential = scheduler.serve_sequential(requests)
    interleaved = scheduler.serve(requests)
    for seq, inter in zip(sequential, interleaved):
        assert (seq.error, str(seq.result)) == (inter.error, str(inter.result))
        assert inter.steps <= inter.slices * 16  # bounded latency survives weights


def test_scheduler_rejects_an_unknown_priority_class_per_request():
    scheduler = make_default_scheduler(slice_steps=64)
    good = Request(language="RefLL", source="1", request_id="good")
    bad = Request(language="RefLL", source="2", priority="urgent", request_id="bad")
    responses = scheduler.serve([good, bad])
    assert responses[0].ok
    assert responses[1].error is not None and "priority" in responses[1].error
