"""Tests for StackLang substitution and free-variable computation."""

from repro.stacklang import (
    Arr,
    If0,
    Lam,
    Num,
    Push,
    Thunk,
    Var,
    free_variables,
    program,
    substitute_program,
)


def test_substitute_replaces_variable_occurrence():
    prog = program(Push(Var("x")))
    assert substitute_program(prog, "x", Num(3)) == program(Push(Num(3)))


def test_substitute_leaves_other_variables():
    prog = program(Push(Var("y")))
    assert substitute_program(prog, "x", Num(3)) == prog


def test_substitute_descends_into_if0_branches():
    prog = program(If0((Push(Var("x")),), (Push(Var("x")),)))
    result = substitute_program(prog, "x", Num(1))
    assert result == program(If0((Push(Num(1)),), (Push(Num(1)),)))


def test_substitute_descends_into_thunks():
    prog = program(Push(Thunk((Push(Var("x")),))))
    result = substitute_program(prog, "x", Num(7))
    assert result == program(Push(Thunk((Push(Num(7)),))))


def test_substitute_descends_into_arrays():
    prog = program(Push(Arr((Var("x"), Num(0)))))
    result = substitute_program(prog, "x", Num(5))
    assert result == program(Push(Arr((Num(5), Num(0)))))


def test_substitute_respects_shadowing():
    inner = Lam(("x",), (Push(Var("x")),))
    prog = program(inner)
    assert substitute_program(prog, "x", Num(9)) == prog


def test_substitute_under_different_binder():
    prog = program(Lam(("y",), (Push(Var("x")), Push(Var("y")))))
    result = substitute_program(prog, "x", Num(2))
    assert result == program(Lam(("y",), (Push(Num(2)), Push(Var("y")))))


def test_free_variables_of_closed_program():
    prog = program(Push(Num(1)), Lam(("x",), (Push(Var("x")),)))
    assert free_variables(prog) == frozenset()


def test_free_variables_detects_open_program():
    prog = program(Push(Var("x")), Lam(("y",), (Push(Var("z")),)))
    assert free_variables(prog) == frozenset({"x", "z"})


def test_free_variables_inside_thunk_and_array():
    prog = program(Push(Thunk((Push(Arr((Var("w"),))),))))
    assert free_variables(prog) == frozenset({"w"})


def test_substitution_makes_program_closed():
    prog = program(Push(Var("a")), Lam(("b",), (Push(Var("a")), Push(Var("b")))))
    closed = substitute_program(prog, "a", Num(0))
    assert free_variables(closed) == frozenset()
