"""Tests for the §3 Discussion reference-sharing strategies (direct / copy / proxy)."""

from repro.interop_refs import strategies
from repro.stacklang import Arr, Loc, Num, Status, run, program


def test_direct_sharing_aliases_the_same_cell():
    workload = strategies.build_write_workloads(count=1)["direct"]
    result = workload.run()
    assert result.status is Status.VALUE
    # Only one cell exists and the foreign write is visible through it.
    assert len(result.heap) == 1
    assert list(result.heap.values()) == [Num(3)]


def test_copy_strategy_allocates_a_second_cell():
    workload = strategies.build_write_workloads(count=1)["copy"]
    result = workload.run()
    assert result.status is Status.VALUE
    assert len(result.heap) == 2
    # The original cell is untouched; only the copy sees the write.
    assert Num(1) in result.heap.values()
    assert Num(3) in result.heap.values()


def test_proxy_strategy_preserves_aliasing():
    workload = strategies.build_write_workloads(count=1)["proxy"]
    result = workload.run()
    assert result.status is Status.VALUE
    assert len(result.heap) == 1
    assert list(result.heap.values()) == [Num(3)]


def test_reads_return_the_stored_value_under_every_strategy():
    for name, workload in strategies.build_read_workloads(count=3, initial=Num(9)).items():
        result = workload.run()
        assert result.status is Status.VALUE, name
        assert result.value == Num(9), name


def test_proxy_reads_cost_more_steps_than_direct_reads():
    workloads = strategies.build_read_workloads(count=50)
    direct_steps = workloads["direct"].steps()
    proxy_steps = workloads["proxy"].steps()
    assert proxy_steps > direct_steps


def test_proxy_writes_cost_more_steps_than_direct_writes():
    workloads = strategies.build_write_workloads(count=50)
    assert workloads["proxy"].steps() > workloads["direct"].steps()


def test_copy_conversion_pays_once_not_per_access():
    few = strategies.build_read_workloads(count=2)
    many = strategies.build_read_workloads(count=100)
    copy_overhead_few = few["copy"].steps() - few["direct"].steps()
    copy_overhead_many = many["copy"].steps() - many["direct"].steps()
    # The copy strategy's overhead is a constant (the one-time copy), unlike the proxy's.
    assert copy_overhead_few == copy_overhead_many


def test_proxy_structure_is_reader_writer_array():
    prog = program(strategies.allocate_reference(Num(0)), strategies.share_proxy())
    result = run(prog)
    assert isinstance(result.value, Arr)
    assert len(result.value.items) == 2


def test_direct_share_returns_original_location():
    prog = program(strategies.allocate_reference(Num(0)), strategies.share_direct())
    result = run(prog)
    assert result.value == Loc(0)
