"""The multi-process worker pool (:mod:`repro.serve.pool`).

What is pinned here:

* **pool == sequential** — sharding a mixed batch (three systems, four
  backends, mixed fuel budgets, frontend rejections) across worker
  processes is observably identical to the parent's sequential baseline;
* **deterministic sharding & affinity** — placement is a process-stable
  hash of the program (repeats land on the same warm worker) unless a
  per-request ``affinity`` key reroutes it;
* **cross-process pipeline-cache sharing** — a program compiled on one
  worker is published to the parent store and warms other workers
  (``shared_cache_hit``), with pickle-failure fallback to recompilation;
* **batched boundary crossings** — identical requests coalesce onto one VM
  instance per shard with per-request accounting preserved;
* **crash isolation** — a dying worker process fails only its own shard's
  requests and is respawned for the next batch.

The spawn start method requires the custom scheduler factories below to be
module-level (pickled by reference and re-imported in the child).
"""

import os
import pickle

import pytest

from repro.serve import Request, Scheduler, WorkerPool, make_default_scheduler
from repro.serve.pool import shard_of
from repro.util.workloads import (
    nested_ml_affi_boundary,
    nested_ml_l3_boundary,
    nested_refll_boundary,
)


def _observable(response):
    """The scheduling- and placement-independent view of a response."""
    result = response.result
    return (
        response.error is None,
        None if result is None else str(result.value),
        None if result is None else str(result.failure),
        None if result is None else result.steps,
    )


def _mixed_requests():
    """Three systems, four backends, duplicates, a starved and two bad requests."""
    return [
        Request(language="RefLL", source=nested_refll_boundary(5), request_id="refs-deep"),
        Request(language="RefLL", source=nested_refll_boundary(3), backend="substitution", request_id="refs-oracle"),
        Request(language="RefLL", source=nested_refll_boundary(3), backend="cek", request_id="refs-segment"),
        Request(language="MiniML", system="affine", source=nested_ml_affi_boundary(4), request_id="affine-a"),
        Request(language="MiniML", system="affine", source=nested_ml_affi_boundary(4), request_id="affine-dup"),
        Request(language="MiniML", system="affine", source=nested_ml_affi_boundary(3), backend="bigstep", request_id="affine-bigstep"),
        Request(language="Affi", source="(if (boundary bool 7) 1 2)", request_id="affi-small"),
        Request(language="MiniML", system="l3", source=nested_ml_l3_boundary(4), request_id="l3-deep"),
        Request(language="MiniML", system="l3", source=nested_ml_l3_boundary(3), backend="substitution", request_id="l3-oracle"),
        Request(language="MiniML", system="affine", source=nested_ml_affi_boundary(4), fuel=7, request_id="starved"),
        Request(language="Klingon", source="(qapla)", request_id="unroutable"),
        Request(language="RefLL", source="(this does not parse", request_id="parse-error"),
    ]


def _affinity_for_shard(pool, shard, language="RefLL", source="x"):
    """An affinity key that lands a request on ``shard``."""
    for attempt in range(64):
        key = f"pin-{shard}-{attempt}"
        if pool.shard_of(Request(language=language, source=source, affinity=key)) == shard:
            return key
    raise AssertionError(f"no affinity key found for shard {shard}")


# -- pool == sequential differential ------------------------------------------


def test_pool_matches_sequential_on_a_mixed_batch():
    requests = _mixed_requests()
    with WorkerPool(workers=2, slice_steps=128) as pool:
        sequential = pool.run_sequential(requests)
        pooled = pool.run_batch(requests)
        assert [_observable(r) for r in pooled] == [_observable(r) for r in sequential]
        # Every pooled response names the worker that served it.
        assert all(response.shard in (0, 1) for response in pooled)
        # The two rejections failed at the frontend on the worker, like sequential.
        by_id = {response.request.request_id: response for response in pooled}
        assert by_id["unroutable"].error is not None
        assert by_id["parse-error"].error is not None
        assert str(by_id["starved"].result.failure) == "out_of_fuel"
        # The duplicate affine program shared one VM instance on its shard.
        assert by_id["affine-a"].coalesced == 2
        assert by_id["affine-dup"].coalesced == 2
        assert by_id["affine-dup"].steps == by_id["affine-a"].steps
        # ...but the fuel-starved duplicate of the same program did not.
        assert by_id["starved"].coalesced == 1


def test_pool_sequential_shards_match_interleaved_shards():
    requests = _mixed_requests()
    with WorkerPool(workers=2, slice_steps=96) as pool:
        interleaved = pool.run_batch(requests)
        sequential = pool.run_batch(requests, sequential_shards=True)
        assert [_observable(r) for r in interleaved] == [_observable(r) for r in sequential]


def test_single_worker_pool_still_serves():
    requests = _mixed_requests()[:4]
    with WorkerPool(workers=1, slice_steps=128) as pool:
        pooled = pool.run_batch(requests)
        assert [_observable(r) for r in pooled] == [_observable(r) for r in pool.run_sequential(requests)]
        assert all(response.shard == 0 for response in pooled)


# -- sharding policy ----------------------------------------------------------


def test_sharding_is_deterministic_and_program_keyed():
    request = Request(language="RefLL", source=nested_refll_boundary(4))
    again = Request(language="RefLL", source=nested_refll_boundary(4))
    for workers in (1, 2, 3, 7):
        shard = shard_of(request, workers)
        assert 0 <= shard < workers
        # Repeat submissions of the same program land on the same worker.
        assert shard_of(again, workers) == shard
    # The system disambiguator participates in the key: the same MiniML
    # source routed to §4-affine vs §5-l3 hashes differently (their compiled
    # artifacts live in different cache namespaces), so for some worker
    # count the two land on different shards.
    ml = Request(language="MiniML", system="affine", source="(+ 1 2)")
    ml_l3 = Request(language="MiniML", system="l3", source="(+ 1 2)")
    assert any(shard_of(ml, workers) != shard_of(ml_l3, workers) for workers in range(2, 16))


def test_affinity_overrides_program_sharding():
    base = Request(language="RefLL", source=nested_refll_boundary(4))
    pinned_a = Request(language="RefLL", source=nested_refll_boundary(4), affinity="a")
    pinned_also_a = Request(language="MiniML", system="l3", source="(+ 1 2)", affinity="a")
    for workers in (2, 3, 7):
        # Same affinity key => same shard, whatever the program.
        assert shard_of(pinned_a, workers) == shard_of(pinned_also_a, workers)
    # And some affinity key moves the request off its default shard.
    workers = 2
    moved = [
        key
        for key in (f"k{i}" for i in range(32))
        if shard_of(Request(language="RefLL", source=base.source, affinity=key), workers)
        != shard_of(base, workers)
    ]
    assert moved, "no affinity key ever changed the placement"


# -- cross-process pipeline-cache sharing -------------------------------------


def test_artifact_published_by_one_worker_warms_the_other():
    source = nested_refll_boundary(6)
    with WorkerPool(workers=2, slice_steps=128) as pool:
        first_key = _affinity_for_shard(pool, 0, source=source)
        second_key = _affinity_for_shard(pool, 1, source=source)
        first = pool.run_batch([Request(language="RefLL", source=source, affinity=first_key)])[0]
        second = pool.run_batch([Request(language="RefLL", source=source, affinity=second_key)])[0]
        assert first.shard == 0 and second.shard == 1
        # Worker 0 compiled and published; worker 1 imported instead of compiling.
        assert first.published and not first.shared_cache_hit
        assert second.shared_cache_hit and not second.published
        assert second.cache_hit  # the import satisfied the frontend LRU lookup
        assert _observable(first) == _observable(second)
        stats = pool.cache_stats()
        assert stats["publishes"] >= 1
        assert stats["hits"] >= 1
        assert stats["cross_worker_hits"] >= 1
        assert stats["entries"] >= 1
        assert stats["unpicklable"] == 0


def test_same_batch_publish_race_credits_only_the_winning_shard():
    # One batch spreads the same program across both shards while the store
    # is empty: both workers compile, but the store keeps one artifact
    # (first shard in collection order) — exactly one response may claim it.
    source = nested_refll_boundary(5)
    with WorkerPool(workers=2, slice_steps=128) as pool:
        batch = [
            Request(language="RefLL", source=source, affinity=_affinity_for_shard(pool, 0, source=source)),
            Request(language="RefLL", source=source, affinity=_affinity_for_shard(pool, 1, source=source)),
        ]
        responses = pool.run_batch(batch)
        assert sorted(response.shard for response in responses) == [0, 1]
        assert sum(1 for response in responses if response.published) == 1
        assert pool.cache_stats()["publishes"] == 1
        assert _observable(responses[0]) == _observable(responses[1])


def test_repeat_submissions_stay_on_the_warm_worker():
    source = nested_refll_boundary(5)
    with WorkerPool(workers=2, slice_steps=128) as pool:
        first = pool.run_batch([Request(language="RefLL", source=source)])[0]
        second = pool.run_batch([Request(language="RefLL", source=source)])[0]
        assert first.shard == second.shard
        # The repeat is a *local* LRU hit on the warm worker, not a shared-store
        # import (the store only backfills workers that have never seen it)...
        assert second.cache_hit and not second.shared_cache_hit
        # ...and only the first submission published: the worker is told which
        # keys the store holds, so repeats are not re-exported or re-flagged.
        assert first.published and not second.published
        assert pool.cache_stats()["publishes"] == 1


def test_explicit_and_implicit_system_spellings_share_a_shard():
    # RefLL routes to the refs system whether or not the request says so;
    # both spellings are the same program and must land on the same warm
    # worker (the pool hashes the *routed* system, not the raw field).
    source = nested_refll_boundary(4)
    implicit = Request(language="RefLL", source=source)
    explicit = Request(language="RefLL", system="refs", source=source)
    with WorkerPool(workers=5, slice_steps=128) as pool:
        assert pool.shard_of(implicit) == pool.shard_of(explicit)


class _UnpicklableProgram(tuple):
    """A runnable StackLang program whose pickling always fails."""

    def __new__(cls, items):
        self = super().__new__(cls, items)
        self.hook = lambda: None  # lambdas do not pickle
        return self


def _unpicklable_refll_factory(slice_steps: int) -> Scheduler:
    """Default scheduler, except RefLL compiles to an unpicklable artifact."""
    scheduler = make_default_scheduler(slice_steps=slice_steps)
    frontend = scheduler.systems["refs"].frontend("RefLL")
    original = frontend.compile
    frontend.compile = lambda term: _UnpicklableProgram(original(term))
    return scheduler


def test_unpicklable_artifacts_fall_back_to_recompilation():
    source = nested_refll_boundary(5)
    with WorkerPool(workers=2, slice_steps=128, scheduler_factory=_unpicklable_refll_factory) as pool:
        first_key = _affinity_for_shard(pool, 0, source=source)
        second_key = _affinity_for_shard(pool, 1, source=source)
        first = pool.run_batch([Request(language="RefLL", source=source, affinity=first_key)])[0]
        second = pool.run_batch([Request(language="RefLL", source=source, affinity=second_key)])[0]
        # Nothing was published or imported -- the second worker recompiled
        # from source and produced the same observable result.
        assert not first.published and not second.shared_cache_hit
        assert not second.cache_hit
        assert first.error is None and second.error is None
        assert _observable(first) == _observable(second)
        stats = pool.cache_stats()
        assert stats["unpicklable"] >= 1
        assert stats["publishes"] == 0 and stats["entries"] == 0


# -- batched boundary crossings (scheduler-level, in-process) ------------------


def test_serve_batched_coalesces_identical_requests():
    scheduler = make_default_scheduler(slice_steps=128)
    source = nested_refll_boundary(4)
    requests = [
        Request(language="RefLL", source=source, request_id="dup-0"),
        Request(language="RefLL", source=source, request_id="dup-1"),
        Request(language="RefLL", source=source, request_id="dup-2"),
        Request(language="RefLL", source=source, backend="substitution", request_id="oracle"),
        Request(language="RefLL", source=source, fuel=5, request_id="starved"),
    ]
    batched = scheduler.serve_batched(requests)
    sequential = make_default_scheduler(slice_steps=128).serve_sequential(requests)
    assert [_observable(r) for r in batched] == [_observable(r) for r in sequential]
    assert [r.coalesced for r in batched] == [3, 3, 3, 1, 1]
    assert [r.request.request_id for r in batched] == [r.request_id for r in requests]
    # The three coalesced requests share the representative's accounting...
    assert batched[1].steps == batched[0].steps and batched[1].slices == batched[0].slices
    # ...and the program compiled exactly once: the dup group's representative
    # missed, while the oracle/starved groups (same source, own VM instances)
    # hit the pipeline LRU instead of recompiling.
    frontend = scheduler.systems["refs"].frontend("RefLL")
    assert frontend.cache_stats()["misses"] == 1
    assert frontend.cache_stats()["hits"] == 2
    # Different backend / different fuel kept their own VM instances.
    assert str(batched[4].result.failure) == "out_of_fuel"


def _not_a_machine(code, fuel: int = 100_000):
    raise AssertionError("factoryless backends must never coalesce")


def test_factoryless_backends_never_coalesce():
    scheduler = make_default_scheduler(slice_steps=128)
    target = scheduler.systems["refs"].target
    target.register_backend("thirdparty", _not_a_machine)
    request = Request(language="RefLL", source=nested_refll_boundary(3), backend="thirdparty")
    assert scheduler.batch_key(request) is None
    # And requests that do not route at all get no key either.
    assert scheduler.batch_key(Request(language="Klingon", source="(x)")) is None


# -- crash isolation ----------------------------------------------------------


def _exit_hard(code, fuel: int = 100_000):
    os._exit(13)  # simulate a segfaulting backend: no exception, no cleanup


def _crashing_factory(slice_steps: int) -> Scheduler:
    """Default scheduler plus a 'crash' backend that kills the process."""
    scheduler = make_default_scheduler(slice_steps=slice_steps)
    scheduler.systems["refs"].target.register_backend("crash", _exit_hard)
    return scheduler


def test_worker_crash_migrates_inflight_requests_and_respawns():
    with WorkerPool(workers=2, slice_steps=128, scheduler_factory=_crashing_factory) as pool:
        crash_key = _affinity_for_shard(pool, 0)
        healthy_key = _affinity_for_shard(pool, 1)
        healthy_source = nested_refll_boundary(4)
        requests = [
            # retry_budget=0 pins the crasher to the classic whole-shard
            # failure; with budget it would be redispatched from scratch and
            # crash its recovery target too (covered by the retry tests).
            Request(
                language="RefLL", source="(+ 1 2)", backend="crash",
                affinity=crash_key, request_id="boom", retry_budget=0,
            ),
            Request(language="RefLL", source=healthy_source, affinity=crash_key, request_id="collateral"),
            Request(language="RefLL", source=healthy_source, affinity=healthy_key, request_id="survivor"),
        ]
        responses = pool.run_batch(requests)
        by_id = {response.request.request_id: response for response in responses}
        # The crashing request itself fails: its backend is a factoryless
        # third-party runner (a BlockingExecution), so there is no snapshot
        # to resume from -- and its budget is zero, so no redispatch either.
        assert "crashed" in by_id["boom"].error
        # But the snapshot-capable request sharing the shard is *migrated*:
        # resumed from its last streamed checkpoint on the surviving shard,
        # with the same observable outcome as an undisturbed run.
        collateral = by_id["collateral"]
        assert collateral.error is None and collateral.result.ok
        assert collateral.migrated_from == 0 and collateral.shard == 1
        assert collateral.resumed
        baseline = pool.run_sequential([requests[1]])[0]
        assert str(collateral.result) == str(baseline.result)
        assert collateral.result.steps == baseline.result.steps
        assert by_id["survivor"].error is None and by_id["survivor"].result.ok
        assert by_id["survivor"].migrated_from is None
        stats = pool.cache_stats()
        assert stats["worker_crashes"] == 1
        assert stats["migrations"] == 1
        # The pool respawned the dead worker: the next batch is served fine.
        retry = pool.run_batch(
            [Request(language="RefLL", source=healthy_source, affinity=crash_key, request_id="retry")]
        )[0]
        assert retry.error is None and retry.result.ok
        assert retry.shard == 0


def test_worker_crash_without_checkpoints_still_fails_only_its_shard():
    # checkpoint_every=None turns streaming off, and retry_budget=0 turns
    # redispatch off: the pre-reliability contract (whole-shard failure,
    # clean respawn) must still hold exactly.
    with WorkerPool(
        workers=2, slice_steps=128, scheduler_factory=_crashing_factory, checkpoint_every=None
    ) as pool:
        crash_key = _affinity_for_shard(pool, 0)
        healthy_key = _affinity_for_shard(pool, 1)
        healthy_source = nested_refll_boundary(4)
        requests = [
            Request(
                language="RefLL", source="(+ 1 2)", backend="crash",
                affinity=crash_key, request_id="boom", retry_budget=0,
            ),
            Request(
                language="RefLL", source=healthy_source, affinity=crash_key,
                request_id="collateral", retry_budget=0,
            ),
            Request(language="RefLL", source=healthy_source, affinity=healthy_key, request_id="survivor"),
        ]
        responses = pool.run_batch(requests)
        by_id = {response.request.request_id: response for response in responses}
        assert "crashed" in by_id["boom"].error
        assert "crashed" in by_id["collateral"].error
        assert by_id["survivor"].error is None and by_id["survivor"].result.ok
        assert pool.cache_stats()["migrations"] == 0


def test_close_is_idempotent_and_safe_after_worker_crash():
    pool = WorkerPool(workers=2, slice_steps=128, scheduler_factory=_crashing_factory)
    try:
        crash_key = _affinity_for_shard(pool, 0)
        healthy_key = _affinity_for_shard(pool, 1)
        requests = [
            Request(
                language="RefLL", source="(+ 1 2)", backend="crash",
                affinity=crash_key, retry_budget=0,
            ),
            Request(language="RefLL", source=nested_refll_boundary(3), affinity=healthy_key),
        ]
        pool.run_batch(requests)
        # Kill the surviving worker too, without telling the pool: close()
        # must cope with a dead process behind a half-broken pipe.
        survivor = pool._pool[1]
        assert survivor is not None
        survivor.process.terminate()
        survivor.process.join(timeout=5)
    finally:
        pool.close()
    # Every worker slot is torn down, and closing again is a no-op.
    assert all(worker is None for worker in pool._pool)
    pool.close()
    assert all(worker is None for worker in pool._pool)
    with pytest.raises(RuntimeError):
        pool.run_batch([Request(language="RefLL", source="1")])


def test_worker_death_between_batches_respawns_rewarmed_from_the_store():
    source = nested_refll_boundary(5)
    with WorkerPool(workers=2, slice_steps=128) as pool:
        key = _affinity_for_shard(pool, 0, source=source)
        request = Request(language="RefLL", source=source, affinity=key)
        first = pool.run_batch([request])[0]
        assert first.published and first.shard == 0
        # Kill the worker outside any batch (an OOM kill, a segfault at idle).
        worker = pool._pool[0]
        worker.process.terminate()
        worker.process.join(timeout=5)
        # The next batch is served by a respawn that is re-warmed from the
        # shared store: the artifact ships again and satisfies the compile.
        second = pool.run_batch([request])[0]
        assert second.error is None and second.result.ok
        assert second.shard == 0
        assert second.shared_cache_hit and not second.published
        assert pool.cache_stats()["worker_crashes"] == 1


# -- picklable compiled-program handles ---------------------------------------


def test_compiled_units_round_trip_pickle_in_all_three_systems():
    scheduler = make_default_scheduler(slice_steps=128)
    probes = [
        Request(language="RefLL", source=nested_refll_boundary(3)),
        Request(language="MiniML", system="affine", source=nested_ml_affi_boundary(3)),
        Request(language="MiniML", system="l3", source=nested_ml_l3_boundary(3)),
    ]
    for request in probes:
        _name, system = scheduler.route(request)
        unit = system.compile_source(request.language, request.source)
        clone = pickle.loads(pickle.dumps(unit))
        original = system.run_compiled(unit.target_code)
        migrated = system.run_compiled(clone.target_code)
        assert str(original.value) == str(migrated.value)
        assert original.steps == migrated.steps


def test_stacklang_compiled_execution_pickles_mid_run():
    from repro.stacklang.cek import CompiledExecution

    scheduler = make_default_scheduler(slice_steps=128)
    unit = scheduler.systems["refs"].compile_source("RefLL", nested_refll_boundary(8))
    reference = CompiledExecution(unit.target_code, fuel=100_000).run()
    for split in (1, 9, 40):
        execution = CompiledExecution(unit.target_code, fuel=100_000)
        early = execution.step_n(split)
        migrated = pickle.loads(pickle.dumps(execution))
        result = early if early is not None else migrated.run()
        assert result.status == reference.status
        assert result.steps == reference.steps
        assert str(result.config) == str(reference.config)
