"""Acceptance: the CEK substrate beats the substitution oracle by ≥5×.

These are coarse wall-clock guards, not benchmarks (the real measurements
live in ``benchmarks/bench_boundary_crossing.py``); the workloads are sized
so the observed ratios are an order of magnitude above the 5× bar, keeping
the assertion robust on slow CI machines.
"""

import time

import pytest

from repro.interop_affine import make_system as make_affine_system
from repro.interop_l3 import make_system as make_l3_system

FUEL = 5_000_000
MIN_SPEEDUP = 5.0


def _nested_affine_crossing(depth: int) -> str:
    source = "1"
    for _ in range(depth):
        source = f"(+ 1 (boundary int (boundary int {source})))"
    return source


def _nested_l3_crossing(depth: int) -> str:
    source = "1"
    for _ in range(depth):
        source = f"(+ {source} (! (boundary (ref int) (new true))))"
    return source


def _best_of(action, repeats: int = 3) -> float:
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        action()
        timings.append(time.perf_counter() - start)
    return min(timings)


@pytest.mark.parametrize(
    "factory,builder,depth",
    [
        (make_affine_system, _nested_affine_crossing, 60),
        (make_l3_system, _nested_l3_crossing, 40),
    ],
    ids=["affine", "l3"],
)
def test_cek_beats_substitution_on_deep_boundary_crossing(factory, builder, depth):
    system = factory()
    unit = system.compile_source("MiniML", builder(depth))

    results = {
        backend: system.run_compiled(unit.target_code, fuel=FUEL, backend=backend)
        for backend in ("substitution", "cek")
    }
    assert results["substitution"].ok and results["cek"].ok
    assert results["substitution"].value == results["cek"].value

    substitution_time = _best_of(
        lambda: system.run_compiled(unit.target_code, fuel=FUEL, backend="substitution")
    )
    cek_time = _best_of(lambda: system.run_compiled(unit.target_code, fuel=FUEL, backend="cek"))
    speedup = substitution_time / cek_time
    assert speedup >= MIN_SPEEDUP, (
        f"CEK only {speedup:.1f}x faster than substitution "
        f"({substitution_time * 1000:.2f}ms vs {cek_time * 1000:.2f}ms)"
    )
