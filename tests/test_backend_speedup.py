"""Acceptance: the compiled machines beat the substitution oracle by ≥5×.

These are coarse wall-clock guards, not benchmarks (the real measurements
live in ``benchmarks/bench_boundary_crossing.py``); the workloads are sized
so the observed ratios are an order of magnitude above the 5× bar, keeping
the assertion robust on slow CI machines.

All three systems are held to the same bar: the LCVM systems (§4 affine,
§5 L3/memory) through the compiled-dispatch CEK machine, and StackLang (§3
shared memory) through the pc-threaded machine — the segment machine only
managed ~3–4× on deep crossings because ``If0`` branch splicing dominates
that workload, which is exactly what pc-threading removes.
"""

import time

import pytest

from repro.interop_affine import make_system as make_affine_system
from repro.interop_l3 import make_system as make_l3_system
from repro.interop_refs import make_system as make_refs_system

FUEL = 5_000_000
MIN_SPEEDUP = 5.0
FAST_BACKEND = "cek-compiled"


def _nested_affine_crossing(depth: int) -> str:
    source = "1"
    for _ in range(depth):
        source = f"(+ 1 (boundary int (boundary int {source})))"
    return source


def _nested_l3_crossing(depth: int) -> str:
    source = "1"
    for _ in range(depth):
        source = f"(+ {source} (! (boundary (ref int) (new true))))"
    return source


def _nested_refll_crossing(depth: int) -> str:
    source = "1"
    for _ in range(depth):
        source = f"(+ 1 (boundary int (if (boundary bool {source}) false true)))"
    return source


def _best_of(action, repeats: int = 3) -> float:
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        action()
        timings.append(time.perf_counter() - start)
    return min(timings)


@pytest.mark.parametrize(
    "factory,language,builder,depth",
    [
        (make_affine_system, "MiniML", _nested_affine_crossing, 60),
        (make_l3_system, "MiniML", _nested_l3_crossing, 40),
        # Depth is bounded by the recursive frontend parser (Python's default
        # recursion limit under pytest); 60 still shows a ~7-8× ratio.
        (make_refs_system, "RefLL", _nested_refll_crossing, 60),
    ],
    ids=["affine", "l3", "refs"],
)
def test_compiled_beats_substitution_on_deep_boundary_crossing(factory, language, builder, depth):
    system = factory()
    unit = system.compile_source(language, builder(depth))

    results = {
        backend: system.run_compiled(unit.target_code, fuel=FUEL, backend=backend)
        for backend in ("substitution", FAST_BACKEND)
    }
    assert results["substitution"].ok and results[FAST_BACKEND].ok
    assert results["substitution"].value == results[FAST_BACKEND].value

    substitution_time = _best_of(
        lambda: system.run_compiled(unit.target_code, fuel=FUEL, backend="substitution")
    )
    fast_time = _best_of(
        lambda: system.run_compiled(unit.target_code, fuel=FUEL, backend=FAST_BACKEND)
    )
    speedup = substitution_time / fast_time
    assert speedup >= MIN_SPEEDUP, (
        f"{FAST_BACKEND} only {speedup:.1f}x faster than substitution "
        f"({substitution_time * 1000:.2f}ms vs {fast_time * 1000:.2f}ms)"
    )
