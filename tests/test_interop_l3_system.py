"""End-to-end tests of the §5 system (MiniML + L3 + LCVM/memory) and its checkers."""

import pytest

from repro.core.errors import ConvertibilityError
from repro.interop_l3 import (
    check_convertibility_soundness,
    check_foreign_type_discipline,
    check_ownership_transfer,
    check_type_safety,
    make_system,
)
from repro.lcvm import CellKind, Int, Loc, Status
from repro.lcvm import machine as lcvm_machine


@pytest.fixture(scope="module")
def system():
    return make_system()


# -- reference transfer (the heart of §5) --------------------------------------------


def test_l3_reference_transfers_to_miniml_without_copying(system):
    unit = system.compile_source("MiniML", "(boundary (ref int) (new true))")
    result = lcvm_machine.run(unit.target_code)
    assert result.status is Status.VALUE
    assert isinstance(result.value, Loc)
    assert len(result.heap) == 1
    assert result.heap.cells[result.value.address].kind is CellKind.GC


def test_miniml_reads_and_writes_transferred_reference(system):
    source = "(let (r (boundary (ref int) (new false))) (let (i (set! r 7)) (! r)))"
    assert system.run_source("MiniML", source).value == Int(7)


def test_miniml_reference_is_copied_into_l3(system):
    unit = system.compile_source("L3", "(free (boundary (refpkg bool) (ref 0)))")
    result = lcvm_machine.run(unit.target_code)
    assert result.status is Status.VALUE
    assert result.value == Int(0)
    # The manual copy was freed; the original GC cell is still there.
    kinds = [cell.kind for cell in result.heap.cells.values()]
    assert kinds == [CellKind.GC]


def test_l3_frees_its_copy_without_touching_the_original(system):
    source = "(let (r (ref 5)) (let (ignore (boundary unit (let-unit (drop (free (boundary (refpkg bool) r))) unit))) (! r)))"
    # Freeing the L3 copy must not invalidate the MiniML reference.
    result = system.run_source("MiniML", source)
    assert result.ok
    assert result.value == Int(5)


# -- booleans and polymorphism ---------------------------------------------------------


def test_church_boolean_conversion_both_directions(system):
    assert system.run_source("L3", "(if (boundary bool (tylam a (lam (x a) (lam (y a) x)))) true false)").value == Int(0)
    assert system.run_source("MiniML", "(((tyapp (boundary (forall a (-> a (-> a a))) false) int) 10) 20)").value == Int(20)


def test_foreign_type_instantiates_miniml_polymorphism(system):
    source = (
        "(((tyapp (tylam a (lam (x a) (lam (y a) y))) (foreign bool)) "
        "(boundary (foreign bool) true)) (boundary (foreign bool) false))"
    )
    assert system.run_source("MiniML", source).value == Int(1)


def test_foreign_type_restricted_to_duplicable(system):
    with pytest.raises(ConvertibilityError):
        system.compile_source("MiniML", "(boundary (foreign (cap z bool)) (new true))")


def test_function_conversion_across_languages(system):
    assert system.run_source("MiniML", "((boundary (-> int int) (bang (lam (b (! bool)) (let! (x b) x)))) 5)").value == Int(1)
    assert system.run_source("L3", "(let! (f (boundary (! (-o (! bool) bool)) (lam (x int) x))) (f (bang true)))").value == Int(0)


def test_inconvertible_boundary_rejected(system):
    with pytest.raises(ConvertibilityError):
        system.compile_source("L3", "(boundary (-o bool bool) 5)")


# -- checkers ---------------------------------------------------------------------------


def test_all_section5_checkers_pass(system):
    for report in (
        check_convertibility_soundness(system=system),
        check_type_safety(system=system),
        check_ownership_transfer(system=system),
        check_foreign_type_discipline(system=system),
    ):
        assert report.ok, str(report)


def test_registered_checks_run_through_the_system(system):
    reports = system.run_soundness_checks()
    assert set(reports) == {
        "convertibility-soundness",
        "type-safety",
        "ownership-transfer",
        "foreign-types",
    }
    assert all(report.ok for report in reports.values())
