"""Property-based differential tests across the evaluator backends.

The substitution machine is the paper-faithful oracle; the big-step, CEK,
and compiled-dispatch engines must be observably equivalent: identical
values, identical error codes, and identical post-GC heap fragment sizes.

Two levels of heap comparison are used:

* the *interpreted* CEK machine (plain ``cek``) roots lexically-live
  bindings, so mid-run collections can be less eager than the substitution
  machine's syntactic-liveness collections (never more); its heaps are
  compared address-insensitively after a final result-rooted collection,
  which erases that (and only that) difference;
* the *free-variable-pruning* machines — ``cek-compiled`` and, since its
  iterative rewrite, ``bigstep`` — restore the oracle's GC precision
  exactly: their raw post-``callgc`` heaps (exact addresses, exact cells,
  exact collection statistics) are compared with **no** result-rooted
  normalization.  (``bigstep`` used to sit in the first camp and needed the
  normalization crutch; that crutch is deleted.)
"""

import dataclasses
from functools import lru_cache

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.errors import ErrorCode, OutOfFuelError
from repro.interop_affine import DOUBLE_FORCE_PROGRAM
from repro.interop_affine import make_system as make_affine_system
from repro.interop_l3 import make_system as make_l3_system
from repro.interop_refs import make_system as make_refs_system
from repro.lcvm import cek, evaluate
from repro.lcvm import machine as lcvm_machine
from repro.lcvm.heap import CellKind, Heap, HeapCell
from repro.lcvm.machine import Status
from repro.lcvm.syntax import (
    Alloc,
    App,
    Assign,
    BinOp,
    CallGc,
    Deref,
    Fail,
    Free,
    Fst,
    GcMov,
    If,
    Inl,
    Inr,
    Int,
    Lam,
    Let,
    Loc,
    Match,
    NewRef,
    Pair,
    Snd,
    Unit,
    Var,
    mentioned_locations,
)
from repro.lcvm.values import reify
from repro.interop_refs.strategies import canonical_fused_program, fused_pair_programs
from repro.stacklang import Num as StackNum
from repro.stacklang import Status as StackStatus
from repro.stacklang import cek as stack_cek
from repro.stacklang import machine as stack_machine

MACHINE_FUEL = 50_000
FAST_FUEL = 500_000  # env-based engines take more, finer-grained steps


# ---------------------------------------------------------------------------
# Random closed(ish) LCVM programs
# ---------------------------------------------------------------------------

_NAMES = ("a", "b", "c")


def lcvm_programs():
    names = st.sampled_from(_NAMES)
    operators = st.sampled_from(["+", "-", "*", "<"])
    leaves = st.one_of(
        st.integers(-3, 3).map(Int),
        st.just(Unit()),
        names.map(Var),  # often unbound: exercises TYPE-failure parity
        st.just(CallGc()),
        st.sampled_from([Fail(ErrorCode.CONV), Fail(ErrorCode.PTR)]),
    )

    def extend(child):
        return st.one_of(
            st.builds(Pair, child, child),
            st.builds(Fst, child),
            st.builds(Snd, child),
            st.builds(Inl, child),
            st.builds(Inr, child),
            st.builds(If, child, child, child),
            st.builds(Match, child, names, child, names, child),
            st.builds(Let, names, child, child),
            st.builds(Lam, names, child),
            st.builds(App, child, child),
            st.builds(BinOp, operators, child, child),
            st.builds(NewRef, child),
            st.builds(Alloc, child),
            st.builds(Deref, child),
            st.builds(Assign, child, child),
            st.builds(Free, child),
            st.builds(GcMov, child),
        )

    return st.recursive(leaves, extend, max_leaves=20)


# ---------------------------------------------------------------------------
# Canonical observations (addresses compared up to renaming)
# ---------------------------------------------------------------------------


def _canon(expr, mapping, pending):
    """Rename every location to its first-visit index, recording visits."""
    if isinstance(expr, Loc):
        if expr.address not in mapping:
            mapping[expr.address] = len(mapping)
            pending.append(expr.address)
        return Loc(mapping[expr.address])
    if not dataclasses.is_dataclass(expr):
        return expr
    replacements = {}
    for field in dataclasses.fields(expr):
        child = getattr(expr, field.name)
        if dataclasses.is_dataclass(child):
            replacements[field.name] = _canon(child, mapping, pending)
        else:
            replacements[field.name] = child
    return type(expr)(**replacements)


def observation(value, heap):
    """Everything observable about a successful run, address-insensitively.

    The result value and the heap fragment reachable from it are renamed to
    canonical addresses; fragment sizes are taken after a result-rooted
    collection so all backends are measured against the same notion of
    liveness.
    """
    mapping, pending = {}, []
    canon_value = _canon(value, mapping, pending)
    cells = []
    index = 0
    while index < len(pending):
        cell = heap.cells.get(pending[index])
        index += 1
        if cell is None:
            cells.append("dangling")
        else:
            cells.append((cell.kind.value, _canon(cell.value, mapping, pending)))
    normalized = heap.copy()
    normalized.collect(roots=mentioned_locations(value))
    return (
        canon_value,
        tuple(cells),
        len(normalized.gc_fragment()),
        len(normalized.manual_fragment()),
    )


def _machine_outcome(result):
    if result.status is Status.FAIL:
        return ("fail", result.failure_code, len(result.heap.manual_fragment()))
    return ("value",) + observation(result.value, result.heap)


def _bigstep_outcome(result):
    syntax_heap = Heap(
        {address: HeapCell(reify(cell.value), cell.kind) for address, cell in result.heap.cells.items()}
    )
    if not result.ok:
        return ("fail", result.failure, len(syntax_heap.manual_fragment()))
    return ("value",) + observation(reify(result.value), syntax_heap)


@given(program=lcvm_programs())
@settings(max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_four_lcvm_backends_agree(program):
    reference = lcvm_machine.run(program, fuel=MACHINE_FUEL)
    assume(reference.status is not Status.OUT_OF_FUEL)

    cek_result = cek.run(program, fuel=FAST_FUEL)
    assume(cek_result.status is not Status.OUT_OF_FUEL)
    compiled_result = cek.run_compiled(program, fuel=FAST_FUEL)
    assume(compiled_result.status is not Status.OUT_OF_FUEL)
    try:
        big_result = evaluate(program, fuel=FAST_FUEL)
    except OutOfFuelError:
        assume(False)

    expected = _machine_outcome(reference)
    assert _machine_outcome(cek_result) == expected
    assert _machine_outcome(compiled_result) == expected
    assert _bigstep_outcome(big_result) == expected


def _bigstep_raw_cells(result):
    """The big-step heap's cells reified to syntax, for raw comparison."""
    return {
        address: HeapCell(reify(cell.value), cell.kind) for address, cell in result.heap.cells.items()
    }


@given(program=lcvm_programs())
@settings(max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_bigstep_matches_oracle_raw_heaps(program):
    """``bigstep`` vs substitution with NO result-rooted normalization.

    The iterative big-step machine prunes environments to free variables, so
    its raw final heaps — exact addresses (shared smallest-first allocator),
    exact cells, exact collection statistics — must equal the oracle's, on
    success *and* on failure, with no normalizing collection at the end.
    """
    reference = lcvm_machine.run(program, fuel=MACHINE_FUEL)
    assume(reference.status is not Status.OUT_OF_FUEL)
    try:
        big = evaluate(program, fuel=FAST_FUEL)
    except OutOfFuelError:
        assume(False)

    if reference.status is Status.FAIL:
        assert big.failure == reference.failure_code
    else:
        assert big.ok
        assert big.reified_value() == reference.value
    assert _bigstep_raw_cells(big) == reference.heap.cells  # no normalization
    assert big.collections == reference.heap.collections
    assert big.reclaimed == reference.heap.reclaimed


@given(program=lcvm_programs())
@settings(max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_compiled_machine_matches_oracle_raw_heaps(program):
    """``cek-compiled`` vs substitution with NO result-rooted normalization.

    Environment pruning restores the oracle's GC precision, so the raw final
    heaps — exact addresses (both machines share the smallest-first
    allocator), exact cells, and exact collection statistics — must be
    identical, without collecting at the end.
    """
    reference = lcvm_machine.run(program, fuel=MACHINE_FUEL)
    assume(reference.status is not Status.OUT_OF_FUEL)
    compiled = cek.run_compiled(program, fuel=FAST_FUEL)
    assume(compiled.status is not Status.OUT_OF_FUEL)

    assert compiled.status == reference.status
    if reference.status is Status.VALUE:
        assert compiled.value == reference.value
    else:
        assert compiled.failure_code == reference.failure_code
    assert compiled.heap.cells == reference.heap.cells
    assert compiled.heap.collections == reference.heap.collections
    assert compiled.heap.reclaimed == reference.heap.reclaimed


# ---------------------------------------------------------------------------
# Whole-pipeline agreement in all three interop systems
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def _system(factory_name):
    return {"refs": make_refs_system, "affine": make_affine_system, "l3": make_l3_system}[factory_name]()


def refll_sources():
    leaves = st.integers(0, 5).map(str)

    def extend(child):
        return st.one_of(
            st.builds("(+ {} {})".format, child, child),
            st.builds("(+ 1 (boundary int (if (boundary bool {}) false true)))".format, child),
            st.builds("(! (ref {}))".format, child),
        )

    return st.recursive(leaves, extend, max_leaves=6)


def miniml_affine_sources():
    leaves = st.integers(0, 5).map(str)

    def extend(child):
        return st.one_of(
            st.builds("(+ {} {})".format, child, child),
            st.builds("(boundary int (boundary int {}))".format, child),
            st.builds("(! (ref {}))".format, child),
            st.builds("(let (r (ref {})) (let (u (set! r {})) (! r)))".format, child, child),
        )

    return st.recursive(leaves, extend, max_leaves=6)


def miniml_l3_sources():
    leaves = st.integers(0, 5).map(str)

    def extend(child):
        return st.one_of(
            st.builds("(+ {} {})".format, child, child),
            st.builds("(+ {} (! (boundary (ref int) (new true))))".format, child),
            st.builds(
                "(let (r (boundary (ref int) (new false))) (let (u (set! r {})) (! r)))".format, child
            ),
        )

    return st.recursive(leaves, extend, max_leaves=5)


def _assert_backends_agree(system, language, source):
    outcomes = {
        backend: system.run_source(language, source, backend=backend)
        for backend in system.target.backend_names()
    }
    expected = outcomes["substitution"]
    for backend, outcome in outcomes.items():
        assert outcome.value == expected.value, (backend, source)
        assert outcome.failure == expected.failure, (backend, source)


@given(source=refll_sources())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_refs_system_backends_agree(source):
    _assert_backends_agree(_system("refs"), "RefLL", source)


@given(source=miniml_affine_sources())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_affine_system_backends_agree(source):
    _assert_backends_agree(_system("affine"), "MiniML", source)


@given(source=miniml_l3_sources())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_l3_system_backends_agree(source):
    _assert_backends_agree(_system("l3"), "MiniML", source)


# ---------------------------------------------------------------------------
# Deterministic error-code parity across backends
# ---------------------------------------------------------------------------

_FAILING_LCVM_PROGRAMS = [
    (Let("r", Alloc(Int(1)), Let("_", Free(Var("r")), Deref(Var("r")))), ErrorCode.PTR),
    (Let("r", Alloc(Int(1)), Let("_", Free(Var("r")), Assign(Var("r"), Int(2)))), ErrorCode.PTR),
    (Let("r", Alloc(Int(1)), Let("_", Free(Var("r")), Free(Var("r")))), ErrorCode.PTR),
    (Free(NewRef(Int(1))), ErrorCode.PTR),
    (App(Int(1), Int(2)), ErrorCode.TYPE),
    (Let("x", Fail(ErrorCode.CONV), Int(1)), ErrorCode.CONV),
]


@pytest.mark.parametrize(
    "program,code", _FAILING_LCVM_PROGRAMS, ids=[str(p)[:48] for p, _ in _FAILING_LCVM_PROGRAMS]
)
def test_failure_codes_agree_on_all_lcvm_backends(program, code):
    assert lcvm_machine.run(program).failure_code is code
    assert cek.run(program).failure_code is code
    assert cek.run_compiled(program).failure_code is code
    assert evaluate(program).failure is code


def test_conv_failure_agrees_across_affine_backends():
    system = _system("affine")
    for backend in system.target.backend_names():
        result = system.run_source("Affi", DOUBLE_FORCE_PROGRAM, backend=backend)
        assert not result.ok
        assert result.failure is ErrorCode.CONV, backend


def test_bigstep_roots_in_flight_temporaries():
    # Regression: while a pair's second component runs callgc, the already
    # evaluated first component must stay a GC root — the big-step evaluator
    # used to sweep it (env-only roots) and then fail Ptr on the Deref.
    program = Let(
        "p",
        Pair(NewRef(Int(1)), CallGc()),
        Deref(Fst(Var("p"))),
    )
    assert lcvm_machine.run(program).value == Int(1)
    assert cek.run(program).value == Int(1)
    big = evaluate(program)
    assert big.failure is None
    assert reify(big.value) == Int(1)


# ---------------------------------------------------------------------------
# Raw post-callgc fragments: dead-let precision of the compiled machine
# ---------------------------------------------------------------------------

_DEAD_LET_PROGRAMS = [
    # The canonical case: a dead let-binding must be collected mid-run.
    Let(
        "keep",
        NewRef(Int(1)),
        Let("dead", NewRef(Int(2)), Let("_", CallGc(), Deref(Var("keep")))),
    ),
    # A closure that does not capture the dead binding must not root it.
    Let(
        "dead",
        NewRef(Int(7)),
        Let("f", Lam("x", Var("x")), Let("_", CallGc(), App(Var("f"), Int(3)))),
    ),
    # ... while a closure that mentions a binding keeps it alive.
    Let(
        "live",
        NewRef(Int(5)),
        Let("f", Lam("x", Deref(Var("live"))), Let("_", CallGc(), App(Var("f"), Int(0)))),
    ),
    # A binding only free in the *other* match branch is dead once the
    # branch is chosen (branch selection re-prunes the environment).
    Let(
        "a",
        NewRef(Int(1)),
        Match(Inl(Int(0)), "x", Let("_", CallGc(), Int(9)), "y", Deref(Var("a"))),
    ),
    # Dead binding while a continuation frame holds an in-flight value.
    Let(
        "dead",
        NewRef(Int(2)),
        Pair(NewRef(Int(3)), Let("_", CallGc(), Int(1))),
    ),
    # Nested shadowing: only the innermost binding is live.
    Let(
        "r",
        NewRef(Int(1)),
        Let("r", NewRef(Int(2)), Let("_", CallGc(), Deref(Var("r")))),
    ),
]


@pytest.mark.parametrize(
    "program", _DEAD_LET_PROGRAMS, ids=[str(p)[:56] for p in _DEAD_LET_PROGRAMS]
)
def test_compiled_machine_collects_dead_lets_like_oracle(program):
    """Raw-fragment differential: exact cells, addresses, and GC statistics."""
    reference = lcvm_machine.run(program, fuel=MACHINE_FUEL)
    compiled = cek.run_compiled(program, fuel=FAST_FUEL)
    assert compiled.status == reference.status
    assert compiled.value == reference.value
    assert compiled.heap.cells == reference.heap.cells  # no normalization
    assert compiled.heap.collections == reference.heap.collections
    assert compiled.heap.reclaimed == reference.heap.reclaimed


@pytest.mark.parametrize(
    "program", _DEAD_LET_PROGRAMS, ids=[str(p)[:56] for p in _DEAD_LET_PROGRAMS]
)
def test_bigstep_collects_dead_lets_like_oracle(program):
    """Raw post-``callgc`` heaps equal the oracle's — no result-rooted crutch.

    The recursive big-step evaluator kept dead ``let``-bindings alive until
    their scope ended and its differential tests normalized heaps with a
    final result-rooted collection; the iterative machine prunes
    environments to free variables and matches the oracle's raw fragments
    exactly, so the normalization is gone.
    """
    reference = lcvm_machine.run(program, fuel=MACHINE_FUEL)
    big = evaluate(program, fuel=FAST_FUEL)
    assert big.ok
    assert big.reified_value() == reference.value
    assert _bigstep_raw_cells(big) == reference.heap.cells  # no normalization
    assert big.collections == reference.heap.collections
    assert big.reclaimed == reference.heap.reclaimed


def test_compiled_machine_drops_dead_binding_the_interpreted_cek_keeps():
    # The sharpest contrast: on the canonical dead-let program the compiled
    # machine reclaims the dead cell mid-run (like the oracle), while the
    # interpreted CEK machine roots it until its scope ends.
    program = _DEAD_LET_PROGRAMS[0]
    compiled = cek.run_compiled(program)
    interpreted = cek.run(program)
    assert compiled.value == interpreted.value == Int(1)
    assert compiled.heap.reclaimed == 1  # `dead` collected at callgc
    assert set(compiled.heap.cells) == {0}  # only `keep`'s cell survives
    assert interpreted.heap.reclaimed == 0  # lexical scoping kept it alive


def test_compiled_backend_registered_and_default_in_all_systems():
    for factory_name in ("refs", "affine", "l3"):
        system = _system(factory_name)
        assert "cek-compiled" in system.target.backend_names(), factory_name
        assert system.target.default_backend == "cek-compiled", factory_name
        assert "substitution" in system.target.backend_names(), factory_name


def test_bigstep_drops_dead_binding_the_interpreted_cek_keeps():
    # The big-step evaluator now sits in the GC-precise camp with the oracle
    # and the compiled machine: on the canonical dead-let program it reclaims
    # the dead cell mid-run, while the interpreted CEK machine (lexical
    # liveness) roots it until its scope ends.
    program = Let(
        "keep",
        NewRef(Int(1)),
        Let("dead", NewRef(Int(2)), Let("_", CallGc(), Deref(Var("keep")))),
    )
    cek_result = cek.run(program)
    big_result = evaluate(program)
    assert cek_result.value == Int(1)
    assert big_result.reified_value() == Int(1)
    assert cek_result.heap.collections == big_result.collections == 1
    assert big_result.reclaimed == 1  # `dead` collected at callgc, like the oracle
    assert set(big_result.heap.cells) == {0}  # only `keep`'s cell survives
    assert cek_result.heap.reclaimed == 0  # lexical scoping kept it alive


# ---------------------------------------------------------------------------
# StackLang: the fused superinstruction pairs (cek-opt) agree everywhere
# ---------------------------------------------------------------------------


def _stack_outcome(result):
    """All four StackLang engines are raw-comparable: status, top value,
    failure code, and the exact final heap (steps excluded — fuel granularity
    is backend-specific, and fused pairs burn one step where the unfused
    machines burn two)."""
    return (result.status, result.value, result.failure_code, dict(result.heap))


@given(fused=fused_pair_programs())
@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_stacklang_backends_agree_on_fused_pair_chains(fused):
    reference = stack_machine.run(fused, fuel=MACHINE_FUEL)
    assert reference.status is not StackStatus.OUT_OF_FUEL
    expected = _stack_outcome(reference)
    assert _stack_outcome(stack_cek.run(fused, fuel=FAST_FUEL)) == expected
    assert _stack_outcome(stack_cek.run_compiled(fused, fuel=FAST_FUEL)) == expected
    assert _stack_outcome(stack_cek.run_optimized(fused, fuel=FAST_FUEL)) == expected


def test_canonical_fused_program_forms_all_five_pair_kinds():
    before = stack_cek.fused_cache_stats()["fused_pairs"]
    stack_cek.compile_program_fused(canonical_fused_program())
    after = stack_cek.fused_cache_stats()["fused_pairs"]
    assert after - before >= 5  # one superinstruction per pair kind


def test_canonical_fused_program_agrees_on_all_four_backends():
    fused = canonical_fused_program()
    reference = stack_machine.run(fused, fuel=MACHINE_FUEL)
    assert reference.status is StackStatus.VALUE
    assert reference.value == StackNum(7)
    assert dict(reference.heap) == {0: StackNum(7)}
    expected = _stack_outcome(reference)
    assert _stack_outcome(stack_cek.run(fused, fuel=FAST_FUEL)) == expected
    assert _stack_outcome(stack_cek.run_compiled(fused, fuel=FAST_FUEL)) == expected
    assert _stack_outcome(stack_cek.run_optimized(fused, fuel=FAST_FUEL)) == expected
