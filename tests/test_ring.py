"""The consistent-hash ring (:mod:`repro.serve.ring`), in isolation.

What is pinned here:

* **deterministic assignment** — placement is pure sha256 math over
  (node, replica) and key strings: the same ring maps the same key to the
  same node in every process, every run;
* **bounded remap under membership change** — adding a node moves keys
  *only to the new node* and only a bounded fraction of them (≈1/n in
  expectation); removing it restores the previous assignment exactly, and
  its orphaned keys land only on surviving nodes;
* **virtual-node distribution** — with enough replicas per node, keys
  spread across members instead of clumping on one arc;
* **candidate order** — ``candidates(key, k)`` is the clockwise failover
  order: it starts at ``node_for(key)``, never repeats a node, and is a
  prefix-stable preference list (growing k extends it, never reorders it).
"""

import pytest

from repro.serve import DEFAULT_VIRTUAL_NODES, HashRing
from repro.serve.ring import _hash64


def _keys(count=1000):
    return [f"program-{index}" for index in range(count)]


def test_assignment_is_deterministic_across_instances():
    first = HashRing(["a", "b", "c"])
    second = HashRing(["c", "a", "b"])  # construction order must not matter
    for key in _keys(200):
        assert first.node_for(key) == second.node_for(key)


def test_empty_ring_raises():
    ring = HashRing()
    with pytest.raises(KeyError):
        ring.node_for("anything")
    with pytest.raises(KeyError):
        ring.candidates("anything")
    assert len(ring) == 0


def test_membership_surface():
    ring = HashRing(["a"])
    assert "a" in ring and "b" not in ring
    ring.add("b")
    ring.add("b")  # idempotent
    assert sorted(ring.nodes()) == ["a", "b"]
    assert len(ring) == 2
    ring.remove("b")
    ring.remove("b")  # idempotent
    assert ring.nodes() == ["a"]


def test_single_node_owns_everything():
    ring = HashRing(["only"])
    assert all(ring.node_for(key) == "only" for key in _keys(50))
    assert ring.candidates("x") == ["only"]


def test_join_moves_keys_only_to_the_new_node():
    keys = _keys()
    ring = HashRing([0, 1, 2])
    before = {key: ring.node_for(key) for key in keys}
    ring.add(3)
    after = {key: ring.node_for(key) for key in keys}
    moved = [key for key in keys if before[key] != after[key]]
    assert moved, "a joining node must take over some arcs"
    assert all(after[key] == 3 for key in moved)


def test_join_remap_fraction_is_bounded():
    keys = _keys()
    ring = HashRing([0, 1, 2])
    before = {key: ring.node_for(key) for key in keys}
    ring.add(3)
    moved = sum(1 for key in keys if before[key] != ring.node_for(key))
    fraction = moved / len(keys)
    # Expectation is 1/4; virtual nodes keep the variance modest.  A naive
    # modulo scheme would remap ~3/4 of all keys here.
    assert 0.0 < fraction <= 0.5


def test_leave_restores_prior_assignment_exactly():
    keys = _keys()
    ring = HashRing([0, 1, 2])
    before = {key: ring.node_for(key) for key in keys}
    ring.add(3)
    ring.remove(3)
    assert {key: ring.node_for(key) for key in keys} == before


def test_leave_moves_orphans_only_to_survivors():
    keys = _keys()
    ring = HashRing([0, 1, 2, 3])
    before = {key: ring.node_for(key) for key in keys}
    ring.remove(3)
    after = {key: ring.node_for(key) for key in keys}
    for key in keys:
        if before[key] != 3:
            assert after[key] == before[key], "keys off the leaver must not move"
        assert after[key] != 3


def test_virtual_nodes_spread_load():
    keys = _keys(2000)
    ring = HashRing([0, 1, 2, 3], virtual_nodes=DEFAULT_VIRTUAL_NODES)
    counts = {node: 0 for node in range(4)}
    for key in keys:
        counts[ring.node_for(key)] += 1
    assert all(count > 0 for count in counts.values())
    # Perfect balance is 500 each; virtual nodes must keep the worst node
    # within a small factor of fair share (a single-point ring routinely
    # gives one node several times its share).
    assert max(counts.values()) <= 2.0 * (len(keys) / 4)


def test_more_virtual_nodes_balance_better():
    keys = _keys(2000)
    spreads = {}
    for virtual_nodes in (1, DEFAULT_VIRTUAL_NODES):
        ring = HashRing([0, 1, 2, 3], virtual_nodes=virtual_nodes)
        counts = {node: 0 for node in range(4)}
        for key in keys:
            counts[ring.node_for(key)] += 1
        spreads[virtual_nodes] = max(counts.values()) / max(1, min(counts.values()))
    assert spreads[DEFAULT_VIRTUAL_NODES] < spreads[1]


def test_candidates_start_at_owner_and_never_repeat():
    ring = HashRing(["a", "b", "c", "d"])
    for key in _keys(100):
        order = ring.candidates(key)
        assert order[0] == ring.node_for(key)
        assert sorted(order) == sorted(ring.nodes())
        assert len(set(order)) == len(order)


def test_candidates_k_is_a_stable_prefix():
    ring = HashRing(["a", "b", "c", "d"])
    for key in _keys(50):
        full = ring.candidates(key)
        for k in range(1, 5):
            assert ring.candidates(key, k) == full[:k]
    assert ring.candidates("x", 99) == ring.candidates("x")


def test_virtual_nodes_validation():
    with pytest.raises(ValueError):
        HashRing(virtual_nodes=0)


def test_hash_is_the_documented_sha256_prefix():
    import hashlib

    expected = int.from_bytes(hashlib.sha256(b"some-key").digest()[:8], "big")
    assert _hash64("some-key") == expected
