"""Property-based tests (hypothesis) for the conversion glue code.

These widen the finite sampling used by the bounded checkers: random values
are pushed through the glue code in both directions and the results are
checked against the value interpretations (and, where the conversion pair is
lossless, against a round-trip property).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interop_affine.conversions import make_convertibility as make_affine_convertibility
from repro.interop_refs.conversions import make_convertibility as make_refs_convertibility
from repro.interop_refs.model import LANGUAGE_A as REFHL, LANGUAGE_B as REFLL, RefsModel
from repro.lcvm import Int as LInt, Pair as LPair, run as lcvm_run
from repro.affi import types as affi_ty
from repro.miniml import types as ml_ty
from repro.refhl import types as hl
from repro.refll import types as ll
from repro.stacklang import Arr, Num, Push, program, run

_refs_relation = make_refs_convertibility()
_refs_model = RefsModel()
_affine_relation = make_affine_convertibility()


# -- §3: RefHL ∼ RefLL -----------------------------------------------------------


@given(st.integers(min_value=-1000, max_value=1000))
def test_bool_int_conversion_is_identity_on_target_values(number):
    conversion = _refs_relation.require(hl.BOOL, ll.INT)
    converted = conversion.apply_a_to_b(program(Push(Num(number))))
    assert run(converted).value == Num(number)
    back = conversion.apply_b_to_a(program(Push(Num(number))))
    assert run(back).value == Num(number)


@given(st.booleans(), st.integers(min_value=-50, max_value=50))
def test_sum_to_array_round_trip(use_left, payload):
    """Sums of convertible payloads survive the round trip through [int]."""
    sum_type = hl.SumType(hl.BOOL, hl.BOOL)
    array_type = ll.ArrayType(ll.INT)
    conversion = _refs_relation.require(sum_type, array_type)
    tag = Num(0) if use_left else Num(1)
    value = Arr((tag, Num(payload)))
    to_array = run(conversion.apply_a_to_b(program(Push(value))))
    assert to_array.value == value  # payload conversion is the identity here
    back = run(conversion.apply_b_to_a(program(Push(to_array.value))))
    assert back.value == value


@given(st.integers(min_value=-50, max_value=50), st.integers(min_value=-50, max_value=50))
def test_pair_to_array_round_trip(first, second):
    prod_type = hl.ProdType(hl.BOOL, hl.BOOL)
    array_type = ll.ArrayType(ll.INT)
    conversion = _refs_relation.require(prod_type, array_type)
    value = Arr((Num(first), Num(second)))
    converted = run(conversion.apply_a_to_b(program(Push(value))))
    assert converted.value == value
    back = run(conversion.apply_b_to_a(program(Push(converted.value))))
    assert back.value == value


@given(st.integers(min_value=-20, max_value=20))
@settings(max_examples=25)
def test_converted_values_inhabit_the_target_interpretation(number):
    """Lemma 3.1 as a property: conversion output lands in E[[τ_B]]."""
    world = _refs_model.default_world(32)
    conversion = _refs_relation.require(hl.BOOL, ll.INT)
    converted = conversion.apply_a_to_b(program(Push(Num(number))))
    assert _refs_model.expression_in_type(REFLL, ll.INT, world, converted)
    back = conversion.apply_b_to_a(program(Push(Num(number))))
    assert _refs_model.expression_in_type(REFHL, hl.BOOL, world, back)


# -- §4: Affi ∼ MiniML --------------------------------------------------------------


@given(st.integers(min_value=-1000, max_value=1000))
def test_int_to_affi_bool_normalizes_to_zero_or_one(number):
    conversion = _affine_relation.require(affi_ty.BOOL, ml_ty.INT)
    normalized = lcvm_run(conversion.apply_b_to_a(LInt(number)))
    assert normalized.value in (LInt(0), LInt(1))
    assert (normalized.value == LInt(0)) == (number == 0)


@given(st.integers(min_value=-100, max_value=100), st.sampled_from([0, 1]))
def test_tensor_prod_conversion_preserves_components(number, flag):
    tensor = affi_ty.TensorType(affi_ty.INT, affi_ty.BOOL)
    prod = ml_ty.ProdType(ml_ty.INT, ml_ty.INT)
    conversion = _affine_relation.require(tensor, prod)
    value = LPair(LInt(number), LInt(flag))
    converted = lcvm_run(conversion.apply_a_to_b(value))
    assert converted.value == value
    back = lcvm_run(conversion.apply_b_to_a(converted.value))
    assert back.value == value


@given(st.integers(min_value=0, max_value=1))
def test_affi_bool_to_int_is_identity(flag):
    conversion = _affine_relation.require(affi_ty.BOOL, ml_ty.INT)
    assert lcvm_run(conversion.apply_a_to_b(LInt(flag))).value == LInt(flag)
