"""Tests for the LCVM machine (Fig. 6 + Fig. 12), heap, GC, and big-step evaluator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ErrorCode, MachineFailure
from repro.lcvm import (
    HeapCell,
    cek,
    Alloc,
    App,
    Assign,
    BinOp,
    CallGc,
    CellKind,
    Deref,
    Fail,
    Free,
    Fst,
    GcMov,
    Heap,
    If,
    Inl,
    Inr,
    Int,
    Lam,
    Let,
    Loc,
    Match,
    NewRef,
    Pair,
    Snd,
    Status,
    Unit,
    Var,
    evaluate,
    free_variables,
    is_value,
    let_sequence,
    run,
    substitute,
)
from repro.lcvm.bigstep import IntV, PairV, UnitV


# -- core evaluation -----------------------------------------------------------


def test_int_and_unit_are_values():
    assert is_value(Int(3))
    assert is_value(Unit())
    assert not is_value(BinOp("+", Int(1), Int(2)))


def test_arithmetic():
    assert run(BinOp("+", Int(2), Int(3))).value == Int(5)
    assert run(BinOp("*", Int(2), Int(3))).value == Int(6)
    assert run(BinOp("-", Int(2), Int(3))).value == Int(-1)


def test_less_encodes_booleans_zero_is_true():
    assert run(BinOp("<", Int(1), Int(2))).value == Int(0)
    assert run(BinOp("<", Int(3), Int(2))).value == Int(1)


def test_application_and_substitution():
    program = App(Lam("x", BinOp("+", Var("x"), Int(1))), Int(41))
    assert run(program).value == Int(42)


def test_let_binds_value():
    program = Let("x", Int(7), Pair(Var("x"), Var("x")))
    assert run(program).value == Pair(Int(7), Int(7))


def test_if_zero_takes_then_branch():
    assert run(If(Int(0), Int(10), Int(20))).value == Int(10)
    assert run(If(Int(3), Int(10), Int(20))).value == Int(20)


def test_if_non_integer_fails_type():
    result = run(If(Unit(), Int(1), Int(2)))
    assert result.status is Status.FAIL
    assert result.failure_code is ErrorCode.TYPE


def test_match_on_injections():
    program = Match(Inl(Int(5)), "x", BinOp("+", Var("x"), Int(1)), "y", Int(0))
    assert run(program).value == Int(6)
    program = Match(Inr(Int(5)), "x", Int(0), "y", BinOp("+", Var("y"), Int(2)))
    assert run(program).value == Int(7)


def test_projections():
    assert run(Fst(Pair(Int(1), Int(2)))).value == Int(1)
    assert run(Snd(Pair(Int(1), Int(2)))).value == Int(2)
    assert run(Fst(Int(3))).failure_code is ErrorCode.TYPE


def test_application_of_non_function_fails_type():
    assert run(App(Int(1), Int(2))).failure_code is ErrorCode.TYPE


def test_unbound_variable_fails_type():
    assert run(Var("nope")).failure_code is ErrorCode.TYPE


def test_fail_propagates_code():
    result = run(Let("x", Fail(ErrorCode.CONV), Int(1)))
    assert result.status is Status.FAIL
    assert result.failure_code is ErrorCode.CONV


def test_out_of_fuel_on_divergence():
    omega = App(Lam("x", App(Var("x"), Var("x"))), Lam("x", App(Var("x"), Var("x"))))
    assert run(omega, fuel=100).status is Status.OUT_OF_FUEL


# -- references, manual memory, GC ----------------------------------------------


def test_gc_reference_roundtrip():
    program = Let("r", NewRef(Int(1)), Let("_", Assign(Var("r"), Int(9)), Deref(Var("r"))))
    assert run(program).value == Int(9)


def test_manual_alloc_free_and_dangling_ptr():
    program = Let("r", Alloc(Int(1)), Let("_", Free(Var("r")), Deref(Var("r"))))
    result = run(program)
    assert result.status is Status.FAIL
    assert result.failure_code is ErrorCode.PTR


def test_free_of_gc_cell_is_ptr_error():
    assert run(Free(NewRef(Int(1)))).failure_code is ErrorCode.PTR


def test_double_free_is_ptr_error():
    program = Let("r", Alloc(Int(1)), Let("_", Free(Var("r")), Free(Var("r"))))
    assert run(program).failure_code is ErrorCode.PTR


def test_gcmov_transfers_cell_to_gc():
    program = Let("r", Alloc(Int(5)), Deref(GcMov(Var("r"))))
    result = run(program)
    assert result.value == Int(5)
    assert all(cell.kind is CellKind.GC for cell in result.heap.cells.values())


def test_gcmov_of_gc_cell_is_ptr_error():
    assert run(GcMov(NewRef(Int(1)))).failure_code is ErrorCode.PTR


def test_callgc_collects_unreachable_gc_cells():
    program = let_sequence(NewRef(Int(1)), NewRef(Int(2)), CallGc(), Int(0))
    result = run(program)
    assert result.value == Int(0)
    assert len(result.heap) == 0
    assert result.heap.collections == 1
    assert result.heap.reclaimed == 2


def test_callgc_keeps_reachable_cells():
    program = Let("r", NewRef(Int(1)), Let("_", CallGc(), Deref(Var("r"))))
    result = run(program)
    assert result.value == Int(1)
    assert len(result.heap) == 1


def test_callgc_never_collects_manual_cells():
    program = let_sequence(Alloc(Int(1)), CallGc(), Int(0))
    result = run(program)
    assert len(result.heap) == 1
    assert list(result.heap.cells.values())[0].kind is CellKind.MANUAL


def test_heap_addresses_are_reused_after_free():
    heap = Heap()
    first = heap.allocate(Int(1), CellKind.MANUAL)
    heap.free(first)
    second = heap.allocate(Int(2), CellKind.MANUAL)
    assert first == second


# -- the free-list allocator ------------------------------------------------------


def test_allocator_hands_out_smallest_unused_address():
    heap = Heap()
    addresses = [heap.allocate(Int(index), CellKind.MANUAL) for index in range(5)]
    assert addresses == [0, 1, 2, 3, 4]
    heap.free(3)
    heap.free(1)
    # Freed names are re-used smallest-first, exactly like the old linear scan.
    assert heap.allocate(Int(9), CellKind.GC) == 1
    assert heap.allocate(Int(9), CellKind.GC) == 3
    assert heap.allocate(Int(9), CellKind.GC) == 5


def test_fresh_address_is_a_pure_query():
    heap = Heap()
    heap.allocate(Int(0), CellKind.MANUAL)
    heap.free(0)
    assert heap.fresh_address() == heap.fresh_address() == 0


def test_collected_addresses_are_reused():
    result = run(let_sequence(NewRef(Int(1)), NewRef(Int(2)), CallGc(), NewRef(Int(3)), Int(0)))
    assert result.value == Int(0)
    # Both collected names went back to the allocator; the post-collection
    # allocation re-used the smallest one.
    assert set(result.heap.cells) == {0}


def test_heap_copy_preserves_allocation_order():
    heap = Heap()
    for index in range(4):
        heap.allocate(Int(index), CellKind.MANUAL)
    heap.free(2)
    copied = heap.copy()
    assert copied.allocate(Int(9), CellKind.MANUAL) == 2 == heap.allocate(Int(9), CellKind.MANUAL)


def test_allocator_tolerates_direct_cells_mutation():
    heap = Heap()
    heap.cells[0] = HeapCell(Int(1), CellKind.MANUAL)
    heap.cells[2] = HeapCell(Int(2), CellKind.MANUAL)
    assert heap.allocate(Int(3), CellKind.MANUAL) == 1
    assert heap.allocate(Int(4), CellKind.MANUAL) == 3


def test_allocator_finds_untracked_gaps_below_freed_addresses():
    # Direct seeding past the high-water mark followed by a free must still
    # hand out the *smallest* unused name, like the old linear scan.
    heap = Heap()
    heap.cells[2] = HeapCell(Int(1), CellKind.MANUAL)
    heap.free(2)
    assert heap.allocate(Int(9), CellKind.MANUAL) == 0
    collected = Heap()
    collected.cells[5] = HeapCell(Int(1), CellKind.GC)
    collected.collect(roots=())
    assert collected.allocate(Int(9), CellKind.GC) == 0


def test_allocation_is_not_quadratic_in_heap_size():
    heap = Heap()
    for index in range(5_000):
        heap.allocate(Int(index), CellKind.MANUAL)
    # The high-water-mark counter answers without scanning the 5000 cells.
    assert heap.fresh_address() == 5_000
    assert heap._free == []


def test_dangling_heap_access_raises_ptr_failure_not_keyerror():
    heap = Heap()
    for operation in (lambda: heap.read(7), lambda: heap.write(7, Int(1)),
                      lambda: heap.free(7), lambda: heap.move_to_gc(7)):
        with pytest.raises(MachineFailure) as excinfo:
            operation()
        assert excinfo.value.code is ErrorCode.PTR


def test_heap_fragments_split_by_kind():
    heap = Heap()
    heap.allocate(Int(1), CellKind.MANUAL)
    heap.allocate(Int(2), CellKind.GC)
    assert set(heap.manual_fragment().values()) == {Int(1)}
    assert set(heap.gc_fragment().values()) == {Int(2)}


# -- substitution ---------------------------------------------------------------


def test_substitute_respects_binders():
    body = Lam("x", Var("x"))
    assert substitute(body, "x", Int(1)) == body
    open_term = Lam("y", Var("x"))
    assert substitute(open_term, "x", Int(1)) == Lam("y", Int(1))


def test_free_variables():
    term = Let("x", Var("y"), App(Var("x"), Var("z")))
    assert free_variables(term) == frozenset({"y", "z"})


# -- big-step evaluator agrees with the machine -----------------------------------


_CLOSED_PROGRAMS = [
    BinOp("+", Int(2), Int(3)),
    App(Lam("x", BinOp("*", Var("x"), Var("x"))), Int(6)),
    Let("r", NewRef(Int(1)), Let("_", Assign(Var("r"), Int(9)), Deref(Var("r")))),
    Match(Inl(Int(5)), "x", Var("x"), "y", Int(0)),
    If(Int(0), Pair(Int(1), Int(2)), Pair(Int(3), Int(4))),
    Let("r", Alloc(Int(1)), Let("_", Free(Var("r")), Deref(Var("r")))),
]


@pytest.mark.parametrize("program", _CLOSED_PROGRAMS, ids=[str(p)[:40] for p in _CLOSED_PROGRAMS])
def test_bigstep_agrees_with_smallstep(program):
    small = run(program)
    big = evaluate(program)
    if small.status is Status.VALUE:
        assert big.ok
        assert _runtime_equals(big.value, small.value)
    else:
        assert not big.ok
        assert big.failure == small.failure_code


def _runtime_equals(runtime_value, syntax_value):
    if isinstance(runtime_value, IntV):
        return syntax_value == Int(runtime_value.value)
    if isinstance(runtime_value, UnitV):
        return syntax_value == Unit()
    if isinstance(runtime_value, PairV):
        return (
            isinstance(syntax_value, Pair)
            and _runtime_equals(runtime_value.first, syntax_value.first)
            and _runtime_equals(runtime_value.second, syntax_value.second)
        )
    return True  # closures/locations: structural comparison is not meaningful


@given(st.integers(min_value=-50, max_value=50), st.integers(min_value=-50, max_value=50))
def test_bigstep_and_smallstep_agree_on_arithmetic(a, b):
    program = BinOp("+", Int(a), BinOp("*", Int(b), Int(2)))
    assert run(program).value == Int(a + b * 2)
    assert evaluate(program).value == IntV(a + b * 2)


# -- error-code parity: dangling pointers surface Ptr on every backend -------------


_DANGLING_PROGRAMS = [
    Let("r", Alloc(Int(1)), Let("_", Free(Var("r")), Deref(Var("r")))),
    Let("r", Alloc(Int(1)), Let("_", Free(Var("r")), Assign(Var("r"), Int(2)))),
    Let("r", Alloc(Int(1)), Let("_", Free(Var("r")), Free(Var("r")))),
]


@pytest.mark.parametrize("program", _DANGLING_PROGRAMS, ids=["deref", "assign", "free"])
def test_dangling_operations_fail_ptr_on_every_backend(program):
    assert run(program).failure_code is ErrorCode.PTR
    assert cek.run(program).failure_code is ErrorCode.PTR
    big = evaluate(program)  # must be fail Ptr, never a raw KeyError
    assert big.failure is ErrorCode.PTR


def test_binop_failure_in_right_operand_outranks_type_error():
    # The reference machine reduces both operands to values before the int
    # check; a bad left operand with a failing right operand is Conv, not Type.
    program = BinOp("+", NewRef(Int(0)), Fail(ErrorCode.CONV))
    assert run(program).failure_code is ErrorCode.CONV
    assert cek.run(program).failure_code is ErrorCode.CONV
    assert evaluate(program).failure is ErrorCode.CONV


# -- the CEK machine agrees with the reference machine ----------------------------


@pytest.mark.parametrize("program", _CLOSED_PROGRAMS, ids=[str(p)[:40] for p in _CLOSED_PROGRAMS])
def test_cek_agrees_with_smallstep(program):
    small = run(program)
    fast = cek.run(program)
    assert fast.status is small.status
    assert fast.value == small.value
    assert fast.failure_code == small.failure_code
    assert len(fast.heap.manual_fragment()) == len(small.heap.manual_fragment())


def test_cek_reifies_closures_with_captured_environment():
    program = Let("x", Int(5), Lam("y", BinOp("+", Var("x"), Var("y"))))
    result = cek.run(program)
    assert result.value == Lam("y", BinOp("+", Int(5), Var("y")))
    assert result.value == run(program).value


def test_cek_runs_with_preseeded_syntax_heap():
    heap = Heap()
    address = heap.allocate(Int(41), CellKind.GC)
    result = cek.run(BinOp("+", Deref(Loc(address)), Int(1)), heap=heap)
    assert result.value == Int(42)


def test_cek_step_count_is_linear_not_quadratic():
    # A right-nested addition of n leaves takes O(n) CEK transitions; the
    # substitution machine re-walks the spine and needs Ω(n²) work.
    def nested(n):
        expression = Int(0)
        for index in range(n):
            expression = BinOp("+", Int(1), expression)
        return expression

    small = cek.run(nested(100), fuel=1_000_000)
    large = cek.run(nested(200), fuel=1_000_000)
    assert small.value == Int(100) and large.value == Int(200)
    # Linear growth: doubling the program roughly doubles the steps.
    assert large.steps <= 2 * small.steps + 10
