"""Tests for the LCVM machine (Fig. 6 + Fig. 12), heap, GC, and big-step evaluator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ErrorCode
from repro.lcvm import (
    Alloc,
    App,
    Assign,
    BinOp,
    CallGc,
    CellKind,
    Deref,
    Fail,
    Free,
    Fst,
    GcMov,
    Heap,
    If,
    Inl,
    Inr,
    Int,
    Lam,
    Let,
    Match,
    NewRef,
    Pair,
    Snd,
    Status,
    Unit,
    Var,
    evaluate,
    free_variables,
    is_value,
    let_sequence,
    run,
    substitute,
)
from repro.lcvm.bigstep import IntV, PairV, UnitV


# -- core evaluation -----------------------------------------------------------


def test_int_and_unit_are_values():
    assert is_value(Int(3))
    assert is_value(Unit())
    assert not is_value(BinOp("+", Int(1), Int(2)))


def test_arithmetic():
    assert run(BinOp("+", Int(2), Int(3))).value == Int(5)
    assert run(BinOp("*", Int(2), Int(3))).value == Int(6)
    assert run(BinOp("-", Int(2), Int(3))).value == Int(-1)


def test_less_encodes_booleans_zero_is_true():
    assert run(BinOp("<", Int(1), Int(2))).value == Int(0)
    assert run(BinOp("<", Int(3), Int(2))).value == Int(1)


def test_application_and_substitution():
    program = App(Lam("x", BinOp("+", Var("x"), Int(1))), Int(41))
    assert run(program).value == Int(42)


def test_let_binds_value():
    program = Let("x", Int(7), Pair(Var("x"), Var("x")))
    assert run(program).value == Pair(Int(7), Int(7))


def test_if_zero_takes_then_branch():
    assert run(If(Int(0), Int(10), Int(20))).value == Int(10)
    assert run(If(Int(3), Int(10), Int(20))).value == Int(20)


def test_if_non_integer_fails_type():
    result = run(If(Unit(), Int(1), Int(2)))
    assert result.status is Status.FAIL
    assert result.failure_code is ErrorCode.TYPE


def test_match_on_injections():
    program = Match(Inl(Int(5)), "x", BinOp("+", Var("x"), Int(1)), "y", Int(0))
    assert run(program).value == Int(6)
    program = Match(Inr(Int(5)), "x", Int(0), "y", BinOp("+", Var("y"), Int(2)))
    assert run(program).value == Int(7)


def test_projections():
    assert run(Fst(Pair(Int(1), Int(2)))).value == Int(1)
    assert run(Snd(Pair(Int(1), Int(2)))).value == Int(2)
    assert run(Fst(Int(3))).failure_code is ErrorCode.TYPE


def test_application_of_non_function_fails_type():
    assert run(App(Int(1), Int(2))).failure_code is ErrorCode.TYPE


def test_unbound_variable_fails_type():
    assert run(Var("nope")).failure_code is ErrorCode.TYPE


def test_fail_propagates_code():
    result = run(Let("x", Fail(ErrorCode.CONV), Int(1)))
    assert result.status is Status.FAIL
    assert result.failure_code is ErrorCode.CONV


def test_out_of_fuel_on_divergence():
    omega = App(Lam("x", App(Var("x"), Var("x"))), Lam("x", App(Var("x"), Var("x"))))
    assert run(omega, fuel=100).status is Status.OUT_OF_FUEL


# -- references, manual memory, GC ----------------------------------------------


def test_gc_reference_roundtrip():
    program = Let("r", NewRef(Int(1)), Let("_", Assign(Var("r"), Int(9)), Deref(Var("r"))))
    assert run(program).value == Int(9)


def test_manual_alloc_free_and_dangling_ptr():
    program = Let("r", Alloc(Int(1)), Let("_", Free(Var("r")), Deref(Var("r"))))
    result = run(program)
    assert result.status is Status.FAIL
    assert result.failure_code is ErrorCode.PTR


def test_free_of_gc_cell_is_ptr_error():
    assert run(Free(NewRef(Int(1)))).failure_code is ErrorCode.PTR


def test_double_free_is_ptr_error():
    program = Let("r", Alloc(Int(1)), Let("_", Free(Var("r")), Free(Var("r"))))
    assert run(program).failure_code is ErrorCode.PTR


def test_gcmov_transfers_cell_to_gc():
    program = Let("r", Alloc(Int(5)), Deref(GcMov(Var("r"))))
    result = run(program)
    assert result.value == Int(5)
    assert all(cell.kind is CellKind.GC for cell in result.heap.cells.values())


def test_gcmov_of_gc_cell_is_ptr_error():
    assert run(GcMov(NewRef(Int(1)))).failure_code is ErrorCode.PTR


def test_callgc_collects_unreachable_gc_cells():
    program = let_sequence(NewRef(Int(1)), NewRef(Int(2)), CallGc(), Int(0))
    result = run(program)
    assert result.value == Int(0)
    assert len(result.heap) == 0
    assert result.heap.collections == 1
    assert result.heap.reclaimed == 2


def test_callgc_keeps_reachable_cells():
    program = Let("r", NewRef(Int(1)), Let("_", CallGc(), Deref(Var("r"))))
    result = run(program)
    assert result.value == Int(1)
    assert len(result.heap) == 1


def test_callgc_never_collects_manual_cells():
    program = let_sequence(Alloc(Int(1)), CallGc(), Int(0))
    result = run(program)
    assert len(result.heap) == 1
    assert list(result.heap.cells.values())[0].kind is CellKind.MANUAL


def test_heap_addresses_are_reused_after_free():
    heap = Heap()
    first = heap.allocate(Int(1), CellKind.MANUAL)
    heap.free(first)
    second = heap.allocate(Int(2), CellKind.MANUAL)
    assert first == second


def test_heap_fragments_split_by_kind():
    heap = Heap()
    heap.allocate(Int(1), CellKind.MANUAL)
    heap.allocate(Int(2), CellKind.GC)
    assert set(heap.manual_fragment().values()) == {Int(1)}
    assert set(heap.gc_fragment().values()) == {Int(2)}


# -- substitution ---------------------------------------------------------------


def test_substitute_respects_binders():
    body = Lam("x", Var("x"))
    assert substitute(body, "x", Int(1)) == body
    open_term = Lam("y", Var("x"))
    assert substitute(open_term, "x", Int(1)) == Lam("y", Int(1))


def test_free_variables():
    term = Let("x", Var("y"), App(Var("x"), Var("z")))
    assert free_variables(term) == frozenset({"y", "z"})


# -- big-step evaluator agrees with the machine -----------------------------------


_CLOSED_PROGRAMS = [
    BinOp("+", Int(2), Int(3)),
    App(Lam("x", BinOp("*", Var("x"), Var("x"))), Int(6)),
    Let("r", NewRef(Int(1)), Let("_", Assign(Var("r"), Int(9)), Deref(Var("r")))),
    Match(Inl(Int(5)), "x", Var("x"), "y", Int(0)),
    If(Int(0), Pair(Int(1), Int(2)), Pair(Int(3), Int(4))),
    Let("r", Alloc(Int(1)), Let("_", Free(Var("r")), Deref(Var("r")))),
]


@pytest.mark.parametrize("program", _CLOSED_PROGRAMS, ids=[str(p)[:40] for p in _CLOSED_PROGRAMS])
def test_bigstep_agrees_with_smallstep(program):
    small = run(program)
    big = evaluate(program)
    if small.status is Status.VALUE:
        assert big.ok
        assert _runtime_equals(big.value, small.value)
    else:
        assert not big.ok
        assert big.failure == small.failure_code


def _runtime_equals(runtime_value, syntax_value):
    if isinstance(runtime_value, IntV):
        return syntax_value == Int(runtime_value.value)
    if isinstance(runtime_value, UnitV):
        return syntax_value == Unit()
    if isinstance(runtime_value, PairV):
        return (
            isinstance(syntax_value, Pair)
            and _runtime_equals(runtime_value.first, syntax_value.first)
            and _runtime_equals(runtime_value.second, syntax_value.second)
        )
    return True  # closures/locations: structural comparison is not meaningful


@given(st.integers(min_value=-50, max_value=50), st.integers(min_value=-50, max_value=50))
def test_bigstep_and_smallstep_agree_on_arithmetic(a, b):
    program = BinOp("+", Int(a), BinOp("*", Int(b), Int(2)))
    assert run(program).value == Int(a + b * 2)
    assert evaluate(program).value == IntV(a + b * 2)
