"""Tests for the Fig. 5 realizability model (value/expression relations)."""

import pytest

from repro.core.errors import ModelError
from repro.core.worlds import TypeTag, World
from repro.interop_refs import RefsModel, hl_tag, ll_tag
from repro.interop_refs.model import LANGUAGE_A, LANGUAGE_B
from repro.refhl import types as hl
from repro.refll import types as ll
from repro.refhl import compile_expr as compile_hl, parse_expr as parse_hl
from repro.refll import compile_expr as compile_ll, parse_expr as parse_ll
from repro.stacklang import Arr, Lam, Loc, Num, Push, Thunk, Var, program


@pytest.fixture()
def model():
    return RefsModel()


@pytest.fixture()
def world(model):
    return model.default_world(64)


# -- value relation ------------------------------------------------------------


def test_unit_interpretation_is_only_zero(model, world):
    assert model.value_in_type(LANGUAGE_A, hl.UNIT, world, Num(0))
    assert not model.value_in_type(LANGUAGE_A, hl.UNIT, world, Num(1))


def test_bool_interpretation_is_all_numbers(model, world):
    for number in (0, 1, -5, 42):
        assert model.value_in_type(LANGUAGE_A, hl.BOOL, world, Num(number))
    assert not model.value_in_type(LANGUAGE_A, hl.BOOL, world, Arr(()))


def test_int_interpretation_is_all_numbers(model, world):
    assert model.value_in_type(LANGUAGE_B, ll.INT, world, Num(17))
    assert not model.value_in_type(LANGUAGE_B, ll.INT, world, Thunk(()))


def test_bool_and_int_interpretations_coincide(model):
    assert model.same_interpretation(hl_tag(hl.BOOL), ll_tag(ll.INT))


def test_unit_and_int_interpretations_differ(model):
    assert not model.same_interpretation(hl_tag(hl.UNIT), ll_tag(ll.INT))


def test_sum_interpretation_checks_tag_and_payload(model, world):
    sum_type = hl.SumType(hl.BOOL, hl.UNIT)
    assert model.value_in_type(LANGUAGE_A, sum_type, world, Arr((Num(0), Num(3))))
    assert model.value_in_type(LANGUAGE_A, sum_type, world, Arr((Num(1), Num(0))))
    assert not model.value_in_type(LANGUAGE_A, sum_type, world, Arr((Num(1), Num(3))))
    assert not model.value_in_type(LANGUAGE_A, sum_type, world, Arr((Num(2), Num(0))))
    assert not model.value_in_type(LANGUAGE_A, sum_type, world, Arr((Num(0),)))


def test_product_interpretation(model, world):
    prod = hl.ProdType(hl.UNIT, hl.BOOL)
    assert model.value_in_type(LANGUAGE_A, prod, world, Arr((Num(0), Num(9))))
    assert not model.value_in_type(LANGUAGE_A, prod, world, Arr((Num(2), Num(9))))


def test_array_interpretation_any_length(model, world):
    array = ll.ArrayType(ll.INT)
    assert model.value_in_type(LANGUAGE_B, array, world, Arr(()))
    assert model.value_in_type(LANGUAGE_B, array, world, Arr((Num(1), Num(2), Num(3))))
    assert not model.value_in_type(LANGUAGE_B, array, world, Arr((Num(1), Arr(()))))


def test_sum_and_array_interpretations_differ(model):
    sum_tag = hl_tag(hl.SumType(hl.BOOL, hl.BOOL))
    array_tag = ll_tag(ll.ArrayType(ll.INT))
    assert not model.same_interpretation(sum_tag, array_tag)


def test_reference_interpretation_uses_heap_typing(model):
    world = model.default_world(16).extend_heap_typing(0, ll_tag(ll.INT))
    assert model.value_in_type(LANGUAGE_A, hl.RefType(hl.BOOL), world, Loc(0))
    assert model.value_in_type(LANGUAGE_B, ll.RefType(ll.INT), world, Loc(0))
    assert not model.value_in_type(LANGUAGE_A, hl.RefType(hl.UNIT), world, Loc(0))
    assert not model.value_in_type(LANGUAGE_A, hl.RefType(hl.BOOL), world, Loc(3))


def test_ref_bool_and_ref_int_interpretations_coincide(model):
    assert model.same_interpretation(hl_tag(hl.RefType(hl.BOOL)), ll_tag(ll.RefType(ll.INT)))
    assert not model.same_interpretation(hl_tag(hl.RefType(hl.UNIT)), ll_tag(ll.RefType(ll.INT)))


def test_function_interpretation_accepts_identity_thunk(model, world):
    identity = Thunk((Lam(("x",), (Push(Var("x")),)),))
    assert model.value_in_type(LANGUAGE_A, hl.FunType(hl.BOOL, hl.BOOL), world, identity)
    assert model.value_in_type(LANGUAGE_B, ll.FunType(ll.INT, ll.INT), world, identity)


def test_function_interpretation_rejects_non_thunk(model, world):
    assert not model.value_in_type(LANGUAGE_A, hl.FunType(hl.BOOL, hl.BOOL), world, Num(0))


def test_function_interpretation_rejects_ill_behaved_body(model, world):
    # A "function" that returns an array is not in V[[bool -> bool]].
    bad = Thunk((Lam(("x",), (Push(Arr(())),)),))
    assert not model.value_in_type(LANGUAGE_A, hl.FunType(hl.BOOL, hl.BOOL), world, bad)


def test_compiled_unit_to_unit_function_respects_unit_result(model, world):
    # unit -> unit functions must return exactly 0.
    good = Thunk((Lam(("x",), (Push(Num(0)),)),))
    bad = Thunk((Lam(("x",), (Push(Num(7)),)),))
    fun_type = hl.FunType(hl.UNIT, hl.UNIT)
    assert model.value_in_type(LANGUAGE_A, fun_type, world, good)
    assert not model.value_in_type(LANGUAGE_A, fun_type, world, bad)


# -- expression relation ---------------------------------------------------------


def test_compiled_refhl_terms_inhabit_expression_relation(model, world):
    for source, source_type in [
        ("(if true false true)", hl.BOOL),
        ("(pair true unit)", hl.ProdType(hl.BOOL, hl.UNIT)),
        ("(! (ref true))", hl.BOOL),
        ("(ref false)", hl.RefType(hl.BOOL)),
    ]:
        compiled = compile_hl(parse_hl(source))
        assert model.expression_in_type(LANGUAGE_A, source_type, world, compiled), source


def test_compiled_refll_terms_inhabit_expression_relation(model, world):
    for source, source_type in [
        ("(+ 1 2)", ll.INT),
        ("(array 1 2)", ll.ArrayType(ll.INT)),
        ("(ref 5)", ll.RefType(ll.INT)),
        ("(idx (array 1) 4)", ll.INT),  # fails Idx, which E[[τ]] permits
    ]:
        compiled = compile_ll(parse_ll(source))
        assert model.expression_in_type(LANGUAGE_B, source_type, world, compiled), source


def test_expression_relation_rejects_wrong_type(model, world):
    compiled = compile_hl(parse_hl("(pair true true)"))
    assert not model.expression_in_type(LANGUAGE_A, hl.UNIT, world, compiled)


def test_expression_relation_rejects_type_failure(model, world):
    from repro.core.errors import ErrorCode
    from repro.stacklang import Fail

    assert not model.expression_in_type(LANGUAGE_A, hl.BOOL, world, program(Fail(ErrorCode.TYPE)))


def test_expression_relation_accepts_conv_failure(model, world):
    from repro.core.errors import ErrorCode
    from repro.stacklang import Fail

    assert model.expression_in_type(LANGUAGE_A, hl.BOOL, world, program(Fail(ErrorCode.CONV)))


def test_expression_relation_tolerates_divergence(model):
    from repro.stacklang import Call, Lam, Push, Thunk, Var
    from repro.stacklang.macros import dup

    loop = program(
        Push(Thunk((Lam(("self",), (Push(Var("self")), Push(Var("self")), Call())),))),
        dup(),
        Call(),
    )
    world = model.default_world(32)
    assert model.expression_in_type(LANGUAGE_A, hl.BOOL, world, loop)


def test_heap_satisfaction_respected_by_expression_relation(model):
    # A program reading a location typed int must produce an int.
    world = model.default_world(32).extend_heap_typing(0, ll_tag(ll.INT))
    from repro.stacklang import Loc, Push, Read

    read_program = program(Push(Loc(0)), Read())
    assert model.expression_in_type(LANGUAGE_B, ll.INT, world, read_program)
    assert not model.expression_in_type(LANGUAGE_B, ll.ArrayType(ll.INT), world, read_program)


# -- sampling helpers -------------------------------------------------------------


def test_sample_values_inhabit_their_type(model, world):
    cases = [
        (LANGUAGE_A, hl.BOOL),
        (LANGUAGE_A, hl.SumType(hl.BOOL, hl.UNIT)),
        (LANGUAGE_A, hl.ProdType(hl.BOOL, hl.BOOL)),
        (LANGUAGE_B, ll.INT),
        (LANGUAGE_B, ll.ArrayType(ll.INT)),
    ]
    for language, source_type in cases:
        samples = model.sample_values(language, source_type, world)
        assert samples, f"no samples for {source_type}"
        for sample in samples:
            assert model.value_in_type(language, source_type, world, sample)


def test_canonical_values_inhabit_their_type(model, world):
    for tag in [hl_tag(hl.BOOL), hl_tag(hl.ProdType(hl.UNIT, hl.BOOL)), ll_tag(ll.ArrayType(ll.INT))]:
        value = model.canonical_value(tag)
        assert model.value_in_tag(tag, world, value)


def test_canonical_value_of_reference_type_raises(model):
    with pytest.raises(ModelError):
        model.canonical_value(hl_tag(hl.RefType(hl.BOOL)))


def test_canonical_heap_satisfies_world(model):
    world = model.default_world(16).extend_heap_typing(0, hl_tag(hl.BOOL)).extend_heap_typing(1, ll_tag(ll.ArrayType(ll.INT)))
    heap = model.canonical_heap(world)
    assert set(heap) == {0, 1}
    assert model._heap_satisfies(heap, world, depth=1)


def test_worlds_extension_basics():
    base = World.initial(10, {0: hl_tag(hl.BOOL)})
    extended = base.later(3).extend_heap_typing(1, ll_tag(ll.INT))
    assert extended.extends(base)
    assert not base.extends(extended)
    retyped = World.initial(5, {0: ll_tag(ll.ArrayType(ll.INT))})
    assert not retyped.extends(base)
