"""Unit tests for the repo's CLI tooling (``tools/`` is not a package).

Covers ``tools/check_doc_links.py`` (GitHub anchor slugification, duplicate
anchor suffixing, broken relative-link and fragment detection),
``tools/analyze.py``'s corpus smoke gate, and ``tools/fuzz.py``'s CLI entry
points (generate, corpus replay, and the replay regression on a planted bad
corpus entry).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

TOOLS_DIR = Path(__file__).resolve().parent.parent / "tools"


def _load_tool(name):
    spec = importlib.util.spec_from_file_location(f"tool_{name}", TOOLS_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


doc_links = _load_tool("check_doc_links")
analyze = _load_tool("analyze")
fuzz_cli = _load_tool("fuzz")


# ---------------------------------------------------------------------------
# check_doc_links: slugification
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    ("heading", "slug"),
    [
        ("Simple Heading", "simple-heading"),
        ("Already-dashed heading", "already-dashed-heading"),
        ("Punctuation, stripped! (really?)", "punctuation-stripped-really"),
        ("`code` and **bold** and *em*", "code-and-bold-and-em"),
        ("[link text](https://example.com) kept", "link-text-kept"),
        ("Mixed CASE 123", "mixed-case-123"),
        ("snake_case_stays", "snakecasestays"),  # underscores are markup chars
        ("non&alpha%chars", "nonalphachars"),
    ],
)
def test_github_slug(heading, slug):
    assert doc_links.github_slug(heading) == slug


def test_anchors_of_suffixes_duplicate_slugs():
    text = "# Setup\n\n## Setup\n\ntext\n\n### Setup\n\n## Other\n"
    assert doc_links.anchors_of(text) == {"setup", "setup-1", "setup-2", "other"}


def test_anchors_of_ignores_fenced_code_and_keeps_html_anchors():
    text = (
        "# Real Heading\n\n"
        "```bash\n# not a heading, just a comment\n```\n\n"
        '<a name="explicit-anchor"></a>\n<a id="explicit-id">x</a>\n'
    )
    anchors = doc_links.anchors_of(text)
    assert anchors == {"real-heading", "explicit-anchor", "explicit-id"}


# ---------------------------------------------------------------------------
# check_doc_links: broken-link detection over a temporary docs tree
# ---------------------------------------------------------------------------


@pytest.fixture()
def docs_tree(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "guide.md").write_text(
        "# Guide\n\n## Deep Dive\n\nBack to [index](../index.md#top-level).\n",
        encoding="utf-8",
    )
    (tmp_path / "index.md").write_text(
        "# Top Level\n\n"
        "Good: [guide](docs/guide.md), [section](docs/guide.md#deep-dive),\n"
        "[self](#top-level), [external](https://example.com/x#y),\n"
        "[mail](mailto:a@b.c), [data file](data.txt).\n",
        encoding="utf-8",
    )
    (tmp_path / "data.txt").write_text("not markdown\n", encoding="utf-8")
    return tmp_path


def test_broken_links_passes_a_clean_tree(docs_tree):
    cache = {}
    assert doc_links.broken_links(docs_tree / "index.md", cache) == []
    assert doc_links.broken_links(docs_tree / "docs" / "guide.md", cache) == []


def test_broken_links_detects_a_missing_relative_target(docs_tree):
    page = docs_tree / "missing.md"
    page.write_text("[gone](no/such/file.md)\n", encoding="utf-8")
    broken = doc_links.broken_links(page, {})
    assert len(broken) == 1
    target, reason = broken[0]
    assert target == "no/such/file.md"
    assert reason.startswith("missing file ")


def test_broken_links_detects_a_missing_fragment(docs_tree):
    page = docs_tree / "frag.md"
    page.write_text(
        "# Frag\n\n[bad cross](docs/guide.md#nope) and [bad self](#missing).\n",
        encoding="utf-8",
    )
    broken = doc_links.broken_links(page, {})
    assert {target for target, _reason in broken} == {"docs/guide.md#nope", "#missing"}
    assert all("no heading for #" in reason for _target, reason in broken)


def test_broken_links_skips_links_inside_code_fences(docs_tree):
    page = docs_tree / "fenced.md"
    page.write_text("```\n[fake](not/checked.md)\n```\n", encoding="utf-8")
    assert doc_links.broken_links(page, {}) == []


def test_main_exit_codes(docs_tree, capsys):
    assert doc_links.main([str(docs_tree)]) == 0
    (docs_tree / "broken.md").write_text("[gone](missing.md)\n", encoding="utf-8")
    assert doc_links.main([str(docs_tree)]) == 1
    assert "BROKEN LINK" in capsys.readouterr().err
    assert doc_links.main([]) == 2  # usage error


def test_markdown_files_walks_directories_recursively(docs_tree):
    files = doc_links.markdown_files([str(docs_tree / "docs"), str(docs_tree / "index.md")])
    assert [path.name for path in files] == ["guide.md", "index.md"]


def test_repo_docs_actually_pass_the_link_check():
    repo_root = TOOLS_DIR.parent
    assert doc_links.main([str(repo_root / "README.md"), str(repo_root / "docs")]) == 0


# ---------------------------------------------------------------------------
# analyze.py: corpus smoke gate and single-program mode
# ---------------------------------------------------------------------------


def test_analyze_corpus_gate_is_clean(capsys):
    assert analyze.check_corpus() == 0
    out = capsys.readouterr().out
    assert "0 failures (ok)" in out


def test_analyze_source_reports_crossings():
    source = "(+ 1 (boundary int (if (boundary bool 3) false true)))"
    report = analyze.analyze_source("refs", "RefLL", source)
    assert report.crossing_count == 2
    assert report.estimated_steps > 0


def test_analyze_source_raises_on_frontend_rejection():
    with pytest.raises(Exception) as caught:
        analyze.analyze_source("refs", "RefLL", "(+ 1 (lam (x int) x))")
    assert type(caught.value).__name__ == "TypeCheckError"


def test_analyze_main_single_program_modes(capsys):
    assert analyze.main(["--system", "l3", "--language", "MiniML", "-e", "(+ 1 2)", "--json"]) == 0
    assert '"crossing_count"' in capsys.readouterr().out
    assert analyze.main(["--system", "refs", "--language", "RefLL", "-e", "(+ 1 fuzz_unbound)"]) == 1
    assert "ScopeError" in capsys.readouterr().err


def test_analyze_corpus_crossing_parameters_match_workloads():
    for system, (generator, language, per_depth, _pure) in analyze.CORPUS.items():
        report = analyze.analyze_source(system, language, generator(3))
        assert report.crossing_count == 3 * per_depth, system


# ---------------------------------------------------------------------------
# fuzz.py CLI: generate, replay, and replay regression
# ---------------------------------------------------------------------------


def test_fuzz_cli_generate_smoke(tmp_path, capsys):
    assert fuzz_cli.main(["--count", "12", "--seed", "7", "--corpus", str(tmp_path)]) == 0
    assert "12 programs agreed on every backend" in capsys.readouterr().out
    assert list(tmp_path.iterdir()) == []  # no counterexamples persisted


def test_fuzz_cli_check_fails_when_the_budget_truncates(tmp_path, capsys):
    code = fuzz_cli.main(
        ["--check", "--count", "10_000", "--time-budget", "0", "--corpus", str(tmp_path)]
    )
    assert code == 1
    assert "REGRESSION" in capsys.readouterr().err


def test_fuzz_cli_replay_flags_a_planted_bad_corpus_entry(tmp_path, capsys):
    from repro.fuzz import Disagreement, FuzzCase, save_counterexample

    bad = FuzzCase(
        system="refs",
        language="RefLL",
        source="(+ 1 2)",
        kind="static-error",
        expected_error="TypeCheckError",  # it actually typechecks fine
    )
    save_counterexample(str(tmp_path), Disagreement(bad, "frontend", {"raised": None}))
    assert fuzz_cli.main(["--replay", "--corpus", str(tmp_path)]) == 1
    captured = capsys.readouterr()
    assert "corpus replay failure" in captured.err
    assert "1 disagreement(s)" in captured.out
