"""Request isolation and interleaving-order independence for the serving layer.

Four layers of guarantees:

* the resumable machines — the compiled CEK and pc-threaded StackLang
  machines *and* every oracle (both substitution machines, the iterative
  big-step evaluator, the interpreted CEK) — produce *identical* results
  however their transitions are sliced, including fuel exhaustion landing on
  the exact same step;
* **bounded per-turn latency**: no backend advances more than the driver's
  ``slice_steps`` machine transitions per slice (``steps ≤ slices ×
  slice_steps`` for every response), so a long oracle request cannot stall
  its neighbours' turns;
* a :class:`~repro.serve.scheduler.Scheduler` batch of concurrent requests
  with different backends and different fuel budgets produces exactly the
  results of isolated ``run_source`` runs, with fuel-exhaustion errors
  landing on the right request — oracle-backed requests included;
* a hypothesis property drives the deterministic driver with arbitrary
  interleaving orders (and slice sizes) and requires order-independence.
"""

import asyncio
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lcvm import bigstep as lcvm_bigstep
from repro.lcvm import cek as lcvm_cek
from repro.lcvm import machine as lcvm_machine
from repro.lcvm.machine import Status
from repro.lcvm.syntax import App, Int, Lam, Var
from repro.serve import Request, StepSlicedDriver, make_default_scheduler
from repro.stacklang import cek as stack_cek
from repro.stacklang import machine as stack_machine
from repro.stacklang.machine import Status as StackStatus
from repro.util.workloads import (
    nested_ml_affi_boundary as _nested_ml_affi_boundary,
    nested_ml_l3_boundary as _nested_ml_l3_boundary,
    nested_refll_boundary as _nested_refll_boundary,
)

# One scheduler for the whole module: the pipeline caches stay warm across
# tests (that sharing is exactly what a serving process does), while every
# batch gets fresh executions with private heaps.
SCHEDULER = make_default_scheduler(slice_steps=16)


# A mixed batch: three systems, four backends, two fuel-starved requests,
# and a duplicated heap-allocating program (private-heap isolation).
REQUESTS = [
    Request(language="RefLL", source=_nested_refll_boundary(6), request_id="refs-compiled"),
    Request(
        language="RefLL",
        source=_nested_refll_boundary(4),
        backend="substitution",
        request_id="refs-oracle",
    ),
    Request(language="RefLL", source=_nested_refll_boundary(4), backend="cek", request_id="refs-segment"),
    Request(
        language="MiniML",
        system="affine",
        source=_nested_ml_affi_boundary(6),
        request_id="affine-compiled",
    ),
    Request(
        language="MiniML",
        system="affine",
        source=_nested_ml_affi_boundary(3),
        backend="substitution",
        request_id="affine-oracle",
    ),
    Request(
        language="MiniML",
        system="affine",
        source=_nested_ml_affi_boundary(4),
        backend="bigstep",
        request_id="affine-bigstep",
    ),
    Request(language="Affi", source="(if (boundary bool 7) 1 2)", request_id="affi-compiled"),
    Request(language="MiniML", system="l3", source=_nested_ml_l3_boundary(4), request_id="l3-compiled"),
    Request(language="MiniML", system="l3", source=_nested_ml_l3_boundary(4), request_id="l3-twin"),
    Request(
        language="MiniML",
        system="l3",
        source="(! (boundary (ref int) (new true)))",
        backend="substitution",
        request_id="l3-oracle",
    ),
    Request(
        language="MiniML",
        system="l3",
        source=_nested_ml_l3_boundary(3),
        backend="bigstep",
        request_id="l3-bigstep",
    ),
    Request(
        language="MiniML",
        system="affine",
        source=_nested_ml_affi_boundary(5),
        fuel=7,
        request_id="affine-starved",
    ),
    Request(language="RefLL", source=_nested_refll_boundary(5), fuel=9, request_id="refs-starved"),
    # Oracle backends exhaust *their own* fuel mid-batch too, in a bounded
    # slice, without touching any neighbour.
    Request(
        language="RefLL",
        source=_nested_refll_boundary(5),
        backend="substitution",
        fuel=11,
        request_id="oracle-starved",
    ),
    Request(
        language="MiniML",
        system="affine",
        source=_nested_ml_affi_boundary(5),
        backend="bigstep",
        fuel=13,
        request_id="bigstep-starved",
    ),
]

STARVED = {"affine-starved", "refs-starved", "oracle-starved", "bigstep-starved"}


def _observe_result(result):
    if result is None:
        return None
    return (result.ok, str(result.value), str(result.failure), result.steps)


def _observe(response):
    return (response.error is None, _observe_result(response.result))


def _isolated(request):
    """The request run alone through the one-shot ``run_with`` path."""
    _name, system = SCHEDULER.route(request)
    return system.run_source(
        request.language,
        request.source,
        fuel=request.fuel,
        backend=request.backend,
        **dict(request.typecheck_kwargs),
    )


EXPECTED = [(True, _observe_result(_isolated(request))) for request in REQUESTS]


# ---------------------------------------------------------------------------
# Resumable machines: slicing must not change the observable result
# ---------------------------------------------------------------------------


def _lcvm_code(depth: int = 6):
    system = SCHEDULER.systems["affine"]
    return system.compile_source("MiniML", _nested_ml_affi_boundary(depth)).target_code


def _stacklang_code(depth: int = 6):
    system = SCHEDULER.systems["refs"]
    return system.compile_source("RefLL", _nested_refll_boundary(depth)).target_code


def _machine_observe(result):
    return (result.status, str(result.value), str(result.failure_code), result.steps)


def test_lcvm_step_n_matches_run_compiled():
    code = _lcvm_code()
    full = lcvm_cek.run_compiled(code, fuel=100_000)
    for slice_steps in (1, 3, 7, 1_000_000):
        execution = lcvm_cek.CompiledExecution(code, fuel=100_000)
        result = execution.step_n(slice_steps)
        while result is None:
            result = execution.step_n(slice_steps)
        assert _machine_observe(result) == _machine_observe(full)
        # A halted execution keeps answering with the same result.
        assert execution.step_n(slice_steps) is result


def test_lcvm_step_n_fuel_exhaustion_is_slice_independent():
    code = _lcvm_code()
    total = lcvm_cek.run_compiled(code, fuel=100_000).steps
    fuel = total // 2
    full = lcvm_cek.run_compiled(code, fuel=fuel)
    assert full.status is Status.OUT_OF_FUEL and full.steps == fuel
    execution = lcvm_cek.CompiledExecution(code, fuel=fuel)
    result = execution.step_n(7)
    while result is None:
        result = execution.step_n(7)
    assert result.status is Status.OUT_OF_FUEL
    assert result.steps == fuel
    assert str(result.config.expr) == str(full.config.expr)


def test_stacklang_step_n_matches_run_compiled():
    code = _stacklang_code()
    full = stack_cek.run_compiled(code, fuel=100_000)
    for slice_steps in (1, 3, 7, 1_000_000):
        execution = stack_cek.CompiledExecution(code, fuel=100_000)
        result = execution.step_n(slice_steps)
        while result is None:
            result = execution.step_n(slice_steps)
        assert _machine_observe(result) == _machine_observe(full)
        assert result.config.heap == full.config.heap
        assert execution.step_n(slice_steps) is result


def test_stacklang_step_n_fuel_exhaustion_is_slice_independent():
    code = _stacklang_code()
    total = stack_cek.run_compiled(code, fuel=100_000).steps
    fuel = total // 2
    full = stack_cek.run_compiled(code, fuel=fuel)
    assert full.status is StackStatus.OUT_OF_FUEL and full.steps == fuel
    execution = stack_cek.CompiledExecution(code, fuel=fuel)
    result = execution.step_n(5)
    while result is None:
        result = execution.step_n(5)
    assert result.status is StackStatus.OUT_OF_FUEL
    assert result.steps == fuel
    assert [str(v) for v in result.config.stack] == [str(v) for v in full.config.stack]


# ---------------------------------------------------------------------------
# Scheduler batches: concurrent == isolated, failures land on the right request
# ---------------------------------------------------------------------------


def test_interleaved_batch_matches_isolated_runs():
    responses = SCHEDULER.serve(REQUESTS)
    assert [_observe(response) for response in responses] == EXPECTED


def test_sequential_batch_matches_isolated_runs():
    responses = SCHEDULER.serve_sequential(REQUESTS)
    assert [_observe(response) for response in responses] == EXPECTED


def test_fuel_exhaustion_lands_on_the_starved_requests_only():
    responses = SCHEDULER.serve(REQUESTS)
    by_id = {response.request.request_id: response for response in responses}
    for request_id, response in by_id.items():
        if request_id in STARVED:
            assert response.result is not None
            assert str(response.result.failure) == "out_of_fuel"
            assert response.result.steps == response.request.fuel
        else:
            assert response.ok, f"{request_id}: {response}"


def test_per_request_accounting():
    responses = SCHEDULER.serve(REQUESTS)
    by_id = {response.request.request_id: response for response in responses}
    # Deep requests take many 16-step slices — the oracle backends included,
    # now that they are genuinely resumable instead of blocking wrappers.
    assert by_id["refs-compiled"].slices > 1
    assert by_id["affine-compiled"].slices > 1
    assert by_id["refs-oracle"].slices > 1  # substitution oracle, sliced
    assert by_id["refs-segment"].slices > 1  # interpreted segment machine, sliced
    assert by_id["l3-bigstep"].slices > 1  # big-step evaluator, sliced
    for response in responses:
        assert response.backend is not None
        assert response.slices >= 1
        assert response.compile_seconds >= 0.0
        assert response.start_seconds >= 0.0
        assert response.run_seconds >= 0.0
        assert response.cache_stats["capacity"] > 0
    # The batch has been served before in this module: every pipeline is hot.
    assert all(response.cache_hit for response in responses)


def test_no_backend_exceeds_the_slice_budget():
    """The bounded-latency guarantee: ≤ slice_steps transitions per turn.

    Each ``step_n`` call may advance at most ``slice_steps`` machine
    transitions, so every response must satisfy ``steps ≤ slices ×
    slice_steps`` — a ``BlockingExecution``-style backend (whole program in
    its first slice) breaks this immediately for any deep request.
    """
    responses = SCHEDULER.serve(REQUESTS)
    for response in responses:
        assert response.result is not None, response
        assert response.result.steps <= response.slices * SCHEDULER.driver.slice_steps, (
            response.request.request_id,
            response.result.steps,
            response.slices,
        )


def test_short_compiled_requests_finish_in_few_slices_next_to_a_long_oracle():
    """A long oracle request cannot inflate its neighbours' turn counts.

    The short compiled requests must complete in the number of slices their
    own step counts dictate — independent of the long substitution-oracle
    request interleaved with them (pre-resumability, the oracle's single
    oversized slice monopolized its turn for the whole program).
    """
    slice_steps = 8
    scheduler = make_default_scheduler(slice_steps=slice_steps)
    short = [
        Request(language="RefLL", source=_nested_refll_boundary(2), request_id=f"short-{i}")
        for i in range(4)
    ]
    long_oracle = Request(
        language="RefLL",
        source=_nested_refll_boundary(40),
        backend="substitution",
        request_id="long-oracle",
    )
    responses = scheduler.serve(short + [long_oracle])
    by_id = {response.request.request_id: response for response in responses}
    oracle = by_id["long-oracle"]
    assert oracle.ok and oracle.slices > 10  # genuinely sliced, not blocking
    for request in short:
        response = by_id[request.request_id]
        assert response.ok
        own_slices_needed = -(-response.result.steps // slice_steps)  # ceil
        assert response.slices <= own_slices_needed + 1, response.request.request_id


def test_rejections_are_isolated_and_admitted_requests_still_run():
    bad_and_good = [
        Request(language="MiniML", source="(+ 1 1)", request_id="ambiguous"),  # needs system
        Request(language="Klingon", source="x", request_id="unknown-language"),
        Request(language="RefLL", source="(+ 1", request_id="parse-error"),
        Request(language="RefLL", source="(+ 1 1)", backend="warp-drive", request_id="bad-backend"),
        Request(language="RefLL", source=_nested_refll_boundary(3), request_id="good"),
    ]
    responses = SCHEDULER.serve(bad_and_good)
    by_id = {response.request.request_id: response for response in responses}
    for request_id in ("ambiguous", "unknown-language", "parse-error", "bad-backend"):
        assert by_id[request_id].error is not None
        assert by_id[request_id].result is None
    assert by_id["good"].ok


def test_backend_crash_is_isolated_to_its_own_request():
    """A backend that raises mid-run fails its request, not the batch."""
    scheduler = make_default_scheduler(slice_steps=32)

    def exploding_backend(target_code, fuel=100_000):
        raise RuntimeError("engine bug")

    scheduler.systems["refs"].target.register_backend("exploding", exploding_backend)
    responses = scheduler.serve(
        [
            Request(language="RefLL", source=_nested_refll_boundary(3), request_id="healthy"),
            Request(
                language="RefLL",
                source=_nested_refll_boundary(3),
                backend="exploding",
                request_id="crashing",
            ),
            Request(language="MiniML", system="affine", source="(+ 1 1)", request_id="other-system"),
        ]
    )
    by_id = {response.request.request_id: response for response in responses}
    assert by_id["crashing"].error == "RuntimeError: engine bug"
    assert by_id["crashing"].result is None
    assert by_id["healthy"].ok
    assert by_id["other-system"].ok
    # The sequential path guards identically.
    sequential = scheduler.serve_sequential([response.request for response in responses])
    assert [response.error for response in sequential] == [response.error for response in responses]


def test_step_n_rejects_non_positive_limits():
    for execution in (
        lcvm_cek.CompiledExecution(_lcvm_code(2)),
        lcvm_cek.InterpretedExecution(_lcvm_code(2)),
        lcvm_machine.SubstitutionExecution(_lcvm_code(2)),
        lcvm_bigstep.BigStepExecution(_lcvm_code(2)),
        stack_cek.CompiledExecution(_stacklang_code(2)),
        stack_cek.SegmentExecution(_stacklang_code(2)),
        stack_machine.SubstitutionExecution(_stacklang_code(2)),
    ):
        with pytest.raises(ValueError):
            execution.step_n(0)
        with pytest.raises(ValueError):
            execution.step_n(-5)
        # The rejected calls made no progress; the execution still runs clean.
        assert execution.steps == 0
        result = execution.step_n(1_000_000)
        assert result is not None


# ---------------------------------------------------------------------------
# Resumable oracles: slicing must not change the observable result
# ---------------------------------------------------------------------------


def _drive_sliced(execution, slice_steps):
    slices = 0
    result = None
    while result is None:
        result = execution.step_n(slice_steps)
        slices += 1
    return result, slices


def test_lcvm_oracle_executions_match_their_one_shot_runs():
    code = _lcvm_code(4)
    cases = [
        (lambda: lcvm_machine.SubstitutionExecution(code, fuel=100_000), lcvm_machine.run),
        (lambda: lcvm_cek.InterpretedExecution(code, fuel=100_000), lcvm_cek.run),
    ]
    for make_execution, one_shot in cases:
        full = one_shot(code, fuel=100_000)
        for slice_steps in (1, 3, 7, 1_000_000):
            result, slices = _drive_sliced(make_execution(), slice_steps)
            assert _machine_observe(result) == _machine_observe(full)
            if slice_steps == 1:
                assert slices >= full.steps  # genuinely bounded slices


def test_bigstep_execution_matches_evaluate_and_is_slice_independent():
    code = _lcvm_code(4)
    full = lcvm_bigstep.evaluate(code, fuel=100_000)
    for slice_steps in (1, 3, 7, 1_000_000):
        result, _slices = _drive_sliced(lcvm_bigstep.BigStepExecution(code, fuel=100_000), slice_steps)
        assert result.ok == full.ok
        assert result.reified_value() == full.reified_value()
        assert result.steps == full.steps
        assert result.collections == full.collections


def test_stacklang_oracle_executions_match_their_one_shot_runs():
    code = _stacklang_code(4)
    cases = [
        (lambda: stack_machine.SubstitutionExecution(code, fuel=100_000), stack_machine.run),
        (lambda: stack_cek.SegmentExecution(code, fuel=100_000), stack_cek.run),
    ]
    for make_execution, one_shot in cases:
        full = one_shot(code, fuel=100_000)
        for slice_steps in (1, 5, 1_000_000):
            result, _slices = _drive_sliced(make_execution(), slice_steps)
            assert _machine_observe(result) == _machine_observe(full)


def test_oracle_fuel_exhaustion_is_slice_independent():
    code = _lcvm_code(4)
    total = lcvm_machine.run(code, fuel=100_000).steps
    fuel = total // 2
    full = lcvm_machine.run(code, fuel=fuel)
    assert full.status is Status.OUT_OF_FUEL and full.steps == fuel
    result, _slices = _drive_sliced(lcvm_machine.SubstitutionExecution(code, fuel=fuel), 7)
    assert result.status is Status.OUT_OF_FUEL
    assert result.steps == fuel
    assert str(result.config.expr) == str(full.config.expr)


def test_bigstep_no_longer_recurses_past_pythons_limit():
    """The iterative big-step machine survives depths that killed the old one.

    A 5000-deep application chain needs ~2 Python frames per level under the
    historical recursive evaluator — far past the interpreter's recursion
    limit — while the explicit-stack machine evaluates it under an
    artificially *lowered* limit, interleaved with a compiled neighbour whose
    result is unaffected.
    """
    deep = Int(42)
    for _ in range(5_000):
        deep = App(Lam("x", Var("x")), deep)
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(500)
    try:
        execution = lcvm_bigstep.BigStepExecution(deep, fuel=1_000_000)
        neighbour = lcvm_cek.CompiledExecution(_lcvm_code(3), fuel=100_000)
        driver = StepSlicedDriver(slice_steps=64)
        deep_result, neighbour_result = driver.run_batch([execution, neighbour])
    finally:
        sys.setrecursionlimit(limit)
    assert deep_result.result.ok
    assert deep_result.result.reified_value() == Int(42)
    assert deep_result.slices > 100  # bounded slices all the way down
    assert neighbour_result.result.status is Status.VALUE


def test_bigstep_divergence_burns_fuel_not_the_python_stack():
    # (λx. x x)(λx. x x): the old recursive evaluator grew one Python frame
    # per β-step and died with RecursionError long before its fuel ran out.
    omega = App(Lam("x", App(Var("x"), Var("x"))), Lam("x", App(Var("x"), Var("x"))))
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(200)
    try:
        result, slices = _drive_sliced(lcvm_bigstep.BigStepExecution(omega, fuel=50_000), 256)
    finally:
        sys.setrecursionlimit(limit)
    assert result.out_of_fuel
    assert not result.ok
    assert result.steps == 50_000
    assert slices >= 50_000 // 256


# ---------------------------------------------------------------------------
# Timing split, async entry points, and the BlockingExecution shim
# ---------------------------------------------------------------------------


def test_prepare_splits_compile_time_from_execution_start_time():
    scheduler = make_default_scheduler(slice_steps=32)
    request = Request(language="RefLL", source=_nested_refll_boundary(3))
    cold = scheduler.submit(request)
    warm = scheduler.submit(request)
    # Both phases are timed, separately, on every admission.
    for response in (cold, warm):
        assert response.ok
        assert response.compile_seconds > 0.0
        assert response.start_seconds > 0.0
    # The warm request hits the pipeline LRU: its compile phase is exactly
    # the (tiny) cache lookup — what warm_cache actually warms — while the
    # start phase still does real per-request setup and is accounted apart.
    assert not cold.cache_hit
    assert warm.cache_hit


def test_run_batch_works_from_inside_a_running_event_loop():
    """Regression: ``serve`` used to raise RuntimeError under a running loop."""
    scheduler = make_default_scheduler(slice_steps=32)
    requests = [
        Request(language="RefLL", source=_nested_refll_boundary(3), request_id="a"),
        Request(
            language="RefLL",
            source=_nested_refll_boundary(2),
            backend="substitution",
            request_id="b",
        ),
    ]
    expected = [_observe(response) for response in scheduler.serve(requests)]

    async def _from_coroutine():
        return scheduler.serve(requests)  # sync API, called inside a loop

    responses = asyncio.run(_from_coroutine())
    assert [_observe(response) for response in responses] == expected


def test_serve_async_interleaves_on_the_callers_loop():
    scheduler = make_default_scheduler(slice_steps=32)
    requests = [
        Request(language="RefLL", source=_nested_refll_boundary(3), request_id="a"),
        Request(
            language="MiniML",
            system="affine",
            source=_nested_ml_affi_boundary(3),
            backend="bigstep",
            request_id="b",
        ),
    ]
    expected = [_observe(response) for response in scheduler.serve(requests)]

    async def _serve():
        ticks = 0

        async def _heartbeat():
            nonlocal ticks
            try:
                while True:
                    ticks += 1
                    await asyncio.sleep(0)
            except asyncio.CancelledError:
                pass

        beat = asyncio.ensure_future(_heartbeat())
        responses = await scheduler.serve_async(requests)
        beat.cancel()
        await beat
        return responses, ticks

    responses, ticks = asyncio.run(_serve())
    assert [_observe(response) for response in responses] == expected
    # The caller's own task kept running between slices: shared loop, not a
    # blocking call.
    assert ticks > 1


def test_blocking_execution_shim_still_serves_factoryless_backends():
    """Third-party backends without an execution factory keep working.

    ``register_backend`` without ``register_execution`` falls back to the
    ``BlockingExecution`` compatibility shim: one oversized slice, correct
    result.  (Every built-in backend registers a real factory; the shim is
    kept for extension code.)
    """
    scheduler = make_default_scheduler(slice_steps=16)
    target = scheduler.systems["refs"].target

    def third_party(target_code, fuel=100_000):
        return target.backends["substitution"](target_code, fuel=fuel)

    target.register_backend("third-party", third_party)
    assert "third-party" not in target.executions
    deep = Request(
        language="RefLL",
        source=_nested_refll_boundary(4),
        backend="third-party",
        request_id="shim",
    )
    oracle = Request(
        language="RefLL",
        source=_nested_refll_boundary(4),
        backend="substitution",
        request_id="resumable",
    )
    responses = scheduler.serve([deep, oracle])
    by_id = {response.request.request_id: response for response in responses}
    assert by_id["shim"].ok and by_id["resumable"].ok
    assert by_id["shim"].result.value == by_id["resumable"].result.value
    assert by_id["shim"].slices == 1  # the shim ignores the slice budget...
    assert by_id["resumable"].slices > 1  # ...the registered oracle does not


def test_warm_cache_prepopulates_the_pipeline_lru():
    scheduler = make_default_scheduler(slice_steps=32)
    hot = [
        ("RefLL", _nested_refll_boundary(3)),
        Request(language="MiniML", system="affine", source=_nested_ml_affi_boundary(3)),
    ]
    assert scheduler.warm_cache(hot) == 2
    responses = scheduler.serve(
        [
            Request(language="RefLL", source=_nested_refll_boundary(3)),
            Request(language="MiniML", system="affine", source=_nested_ml_affi_boundary(3)),
        ]
    )
    assert all(response.cache_hit for response in responses)
    assert all(response.ok for response in responses)


def test_warm_cache_accounting_across_warm_serve_evict_sequences():
    """warm_cache's effect is visible in cache_stats(): misses while warming,
    hits while serving, evictions once the warm set overflows the LRU."""
    scheduler = make_default_scheduler(slice_steps=32)
    frontend = scheduler.systems["refs"].frontend("RefLL")
    frontend.cache_capacity = 2
    sources = [_nested_refll_boundary(depth) for depth in (2, 3, 4)]

    # Warming 3 programs through a capacity-2 LRU: 3 misses, 1 eviction, and
    # only the 2 most recently warmed programs stay resident.
    assert scheduler.warm_cache([("RefLL", source) for source in sources]) == 3
    stats = scheduler.cache_stats()["refs"]["RefLL"]
    assert stats["misses"] == 3
    assert stats["evictions"] == 1
    assert stats["entries"] == 2
    assert stats["hits"] == 0

    # Serving a resident program is the hit warm_cache paid for...
    warm = scheduler.serve([Request(language="RefLL", source=sources[2])])[0]
    assert warm.ok and warm.cache_hit
    assert scheduler.cache_stats()["refs"]["RefLL"]["hits"] == 1

    # ...while the evicted program misses, recompiles, and evicts again.
    evicted = scheduler.serve([Request(language="RefLL", source=sources[0])])[0]
    assert evicted.ok and not evicted.cache_hit
    stats = scheduler.cache_stats()["refs"]["RefLL"]
    assert stats["misses"] == 4
    assert stats["evictions"] == 2
    assert stats["entries"] == 2

    # The per-response snapshot taken at admission matches the live counters.
    assert evicted.cache_stats["misses"] == 4


def test_warm_cache_rejects_malformed_hot_entries():
    scheduler = make_default_scheduler(slice_steps=32)
    with pytest.raises(Exception):
        scheduler.warm_cache([("NoSuchLanguage", "(x)")])
    with pytest.raises(Exception):
        scheduler.warm_cache([("RefLL", "(this does not parse")])


# ---------------------------------------------------------------------------
# Hypothesis: results are independent of the interleaving order
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    schedule=st.lists(st.integers(0, len(REQUESTS) - 1), max_size=80),
    slice_steps=st.integers(1, 64),
)
def test_interleaving_order_independence(schedule, slice_steps):
    prepared = [SCHEDULER.prepare(request) for request in REQUESTS]
    executions = [entry.execution for entry in prepared]
    assert all(execution is not None for execution in executions)
    driver = StepSlicedDriver(slice_steps=slice_steps)
    driven = driver.run_schedule(executions, schedule)
    observed = [(True, _observe_result(outcome.result)) for outcome in driven]
    assert observed == EXPECTED
