"""Request isolation and interleaving-order independence for the serving layer.

Three layers of guarantees:

* the resumable machines (``CompiledExecution`` on both the compiled CEK and
  the pc-threaded StackLang machine) produce *identical* results however
  their transitions are sliced — including fuel exhaustion landing on the
  exact same step;
* a :class:`~repro.serve.scheduler.Scheduler` batch of concurrent requests
  with different backends and different fuel budgets produces exactly the
  results of isolated ``run_source`` runs, with fuel-exhaustion errors
  landing on the right request;
* a hypothesis property drives the deterministic driver with arbitrary
  interleaving orders (and slice sizes) and requires order-independence.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lcvm import cek as lcvm_cek
from repro.lcvm.machine import Status
from repro.serve import Request, StepSlicedDriver, make_default_scheduler
from repro.stacklang import cek as stack_cek
from repro.stacklang.machine import Status as StackStatus
from repro.util.workloads import (
    nested_ml_affi_boundary as _nested_ml_affi_boundary,
    nested_ml_l3_boundary as _nested_ml_l3_boundary,
    nested_refll_boundary as _nested_refll_boundary,
)

# One scheduler for the whole module: the pipeline caches stay warm across
# tests (that sharing is exactly what a serving process does), while every
# batch gets fresh executions with private heaps.
SCHEDULER = make_default_scheduler(slice_steps=16)


# A mixed batch: three systems, four backends, two fuel-starved requests,
# and a duplicated heap-allocating program (private-heap isolation).
REQUESTS = [
    Request(language="RefLL", source=_nested_refll_boundary(6), request_id="refs-compiled"),
    Request(
        language="RefLL",
        source=_nested_refll_boundary(4),
        backend="substitution",
        request_id="refs-oracle",
    ),
    Request(language="RefLL", source=_nested_refll_boundary(4), backend="cek", request_id="refs-segment"),
    Request(
        language="MiniML",
        system="affine",
        source=_nested_ml_affi_boundary(6),
        request_id="affine-compiled",
    ),
    Request(
        language="MiniML",
        system="affine",
        source=_nested_ml_affi_boundary(3),
        backend="substitution",
        request_id="affine-oracle",
    ),
    Request(
        language="MiniML",
        system="affine",
        source=_nested_ml_affi_boundary(4),
        backend="bigstep",
        request_id="affine-bigstep",
    ),
    Request(language="Affi", source="(if (boundary bool 7) 1 2)", request_id="affi-compiled"),
    Request(language="MiniML", system="l3", source=_nested_ml_l3_boundary(4), request_id="l3-compiled"),
    Request(language="MiniML", system="l3", source=_nested_ml_l3_boundary(4), request_id="l3-twin"),
    Request(
        language="MiniML",
        system="l3",
        source="(! (boundary (ref int) (new true)))",
        backend="substitution",
        request_id="l3-oracle",
    ),
    Request(
        language="MiniML",
        system="affine",
        source=_nested_ml_affi_boundary(5),
        fuel=7,
        request_id="affine-starved",
    ),
    Request(language="RefLL", source=_nested_refll_boundary(5), fuel=9, request_id="refs-starved"),
]

STARVED = {"affine-starved", "refs-starved"}


def _observe_result(result):
    if result is None:
        return None
    return (result.ok, str(result.value), str(result.failure), result.steps)


def _observe(response):
    return (response.error is None, _observe_result(response.result))


def _isolated(request):
    """The request run alone through the one-shot ``run_with`` path."""
    _name, system = SCHEDULER.route(request)
    return system.run_source(
        request.language,
        request.source,
        fuel=request.fuel,
        backend=request.backend,
        **dict(request.typecheck_kwargs),
    )


EXPECTED = [(True, _observe_result(_isolated(request))) for request in REQUESTS]


# ---------------------------------------------------------------------------
# Resumable machines: slicing must not change the observable result
# ---------------------------------------------------------------------------


def _lcvm_code(depth: int = 6):
    system = SCHEDULER.systems["affine"]
    return system.compile_source("MiniML", _nested_ml_affi_boundary(depth)).target_code


def _stacklang_code(depth: int = 6):
    system = SCHEDULER.systems["refs"]
    return system.compile_source("RefLL", _nested_refll_boundary(depth)).target_code


def _machine_observe(result):
    return (result.status, str(result.value), str(result.failure_code), result.steps)


def test_lcvm_step_n_matches_run_compiled():
    code = _lcvm_code()
    full = lcvm_cek.run_compiled(code, fuel=100_000)
    for slice_steps in (1, 3, 7, 1_000_000):
        execution = lcvm_cek.CompiledExecution(code, fuel=100_000)
        result = execution.step_n(slice_steps)
        while result is None:
            result = execution.step_n(slice_steps)
        assert _machine_observe(result) == _machine_observe(full)
        # A halted execution keeps answering with the same result.
        assert execution.step_n(slice_steps) is result


def test_lcvm_step_n_fuel_exhaustion_is_slice_independent():
    code = _lcvm_code()
    total = lcvm_cek.run_compiled(code, fuel=100_000).steps
    fuel = total // 2
    full = lcvm_cek.run_compiled(code, fuel=fuel)
    assert full.status is Status.OUT_OF_FUEL and full.steps == fuel
    execution = lcvm_cek.CompiledExecution(code, fuel=fuel)
    result = execution.step_n(7)
    while result is None:
        result = execution.step_n(7)
    assert result.status is Status.OUT_OF_FUEL
    assert result.steps == fuel
    assert str(result.config.expr) == str(full.config.expr)


def test_stacklang_step_n_matches_run_compiled():
    code = _stacklang_code()
    full = stack_cek.run_compiled(code, fuel=100_000)
    for slice_steps in (1, 3, 7, 1_000_000):
        execution = stack_cek.CompiledExecution(code, fuel=100_000)
        result = execution.step_n(slice_steps)
        while result is None:
            result = execution.step_n(slice_steps)
        assert _machine_observe(result) == _machine_observe(full)
        assert result.config.heap == full.config.heap
        assert execution.step_n(slice_steps) is result


def test_stacklang_step_n_fuel_exhaustion_is_slice_independent():
    code = _stacklang_code()
    total = stack_cek.run_compiled(code, fuel=100_000).steps
    fuel = total // 2
    full = stack_cek.run_compiled(code, fuel=fuel)
    assert full.status is StackStatus.OUT_OF_FUEL and full.steps == fuel
    execution = stack_cek.CompiledExecution(code, fuel=fuel)
    result = execution.step_n(5)
    while result is None:
        result = execution.step_n(5)
    assert result.status is StackStatus.OUT_OF_FUEL
    assert result.steps == fuel
    assert [str(v) for v in result.config.stack] == [str(v) for v in full.config.stack]


# ---------------------------------------------------------------------------
# Scheduler batches: concurrent == isolated, failures land on the right request
# ---------------------------------------------------------------------------


def test_interleaved_batch_matches_isolated_runs():
    responses = SCHEDULER.serve(REQUESTS)
    assert [_observe(response) for response in responses] == EXPECTED


def test_sequential_batch_matches_isolated_runs():
    responses = SCHEDULER.serve_sequential(REQUESTS)
    assert [_observe(response) for response in responses] == EXPECTED


def test_fuel_exhaustion_lands_on_the_starved_requests_only():
    responses = SCHEDULER.serve(REQUESTS)
    by_id = {response.request.request_id: response for response in responses}
    for request_id, response in by_id.items():
        if request_id in STARVED:
            assert response.result is not None
            assert str(response.result.failure) == "out_of_fuel"
            assert response.result.steps == response.request.fuel
        else:
            assert response.ok, f"{request_id}: {response}"


def test_per_request_accounting():
    responses = SCHEDULER.serve(REQUESTS)
    by_id = {response.request.request_id: response for response in responses}
    # Deep compiled requests take many 16-step slices; blocking oracle
    # backends complete in exactly one oversized slice.
    assert by_id["refs-compiled"].slices > 1
    assert by_id["affine-compiled"].slices > 1
    assert by_id["refs-oracle"].slices == 1
    assert by_id["affine-oracle"].slices == 1
    for response in responses:
        assert response.backend is not None
        assert response.slices >= 1
        assert response.compile_seconds >= 0.0
        assert response.run_seconds >= 0.0
        assert response.cache_stats["capacity"] > 0
    # The batch has been served before in this module: every pipeline is hot.
    assert all(response.cache_hit for response in responses)


def test_rejections_are_isolated_and_admitted_requests_still_run():
    bad_and_good = [
        Request(language="MiniML", source="(+ 1 1)", request_id="ambiguous"),  # needs system
        Request(language="Klingon", source="x", request_id="unknown-language"),
        Request(language="RefLL", source="(+ 1", request_id="parse-error"),
        Request(language="RefLL", source="(+ 1 1)", backend="warp-drive", request_id="bad-backend"),
        Request(language="RefLL", source=_nested_refll_boundary(3), request_id="good"),
    ]
    responses = SCHEDULER.serve(bad_and_good)
    by_id = {response.request.request_id: response for response in responses}
    for request_id in ("ambiguous", "unknown-language", "parse-error", "bad-backend"):
        assert by_id[request_id].error is not None
        assert by_id[request_id].result is None
    assert by_id["good"].ok


def test_backend_crash_is_isolated_to_its_own_request():
    """A backend that raises mid-run fails its request, not the batch."""
    scheduler = make_default_scheduler(slice_steps=32)

    def exploding_backend(target_code, fuel=100_000):
        raise RuntimeError("engine bug")

    scheduler.systems["refs"].target.register_backend("exploding", exploding_backend)
    responses = scheduler.serve(
        [
            Request(language="RefLL", source=_nested_refll_boundary(3), request_id="healthy"),
            Request(
                language="RefLL",
                source=_nested_refll_boundary(3),
                backend="exploding",
                request_id="crashing",
            ),
            Request(language="MiniML", system="affine", source="(+ 1 1)", request_id="other-system"),
        ]
    )
    by_id = {response.request.request_id: response for response in responses}
    assert by_id["crashing"].error == "RuntimeError: engine bug"
    assert by_id["crashing"].result is None
    assert by_id["healthy"].ok
    assert by_id["other-system"].ok
    # The sequential path guards identically.
    sequential = scheduler.serve_sequential([response.request for response in responses])
    assert [response.error for response in sequential] == [response.error for response in responses]


def test_step_n_rejects_non_positive_limits():
    import pytest

    for execution in (
        lcvm_cek.CompiledExecution(_lcvm_code(2)),
        stack_cek.CompiledExecution(_stacklang_code(2)),
    ):
        with pytest.raises(ValueError):
            execution.step_n(0)
        with pytest.raises(ValueError):
            execution.step_n(-5)
        # The rejected calls made no progress; the execution still runs clean.
        assert execution.steps == 0
        result = execution.step_n(1_000_000)
        assert result is not None


def test_warm_cache_prepopulates_the_pipeline_lru():
    scheduler = make_default_scheduler(slice_steps=32)
    hot = [
        ("RefLL", _nested_refll_boundary(3)),
        Request(language="MiniML", system="affine", source=_nested_ml_affi_boundary(3)),
    ]
    assert scheduler.warm_cache(hot) == 2
    responses = scheduler.serve(
        [
            Request(language="RefLL", source=_nested_refll_boundary(3)),
            Request(language="MiniML", system="affine", source=_nested_ml_affi_boundary(3)),
        ]
    )
    assert all(response.cache_hit for response in responses)
    assert all(response.ok for response in responses)


# ---------------------------------------------------------------------------
# Hypothesis: results are independent of the interleaving order
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    schedule=st.lists(st.integers(0, len(REQUESTS) - 1), max_size=80),
    slice_steps=st.integers(1, 64),
)
def test_interleaving_order_independence(schedule, slice_steps):
    prepared = [SCHEDULER.prepare(request) for request in REQUESTS]
    executions = [entry.execution for entry in prepared]
    assert all(execution is not None for execution in executions)
    driver = StepSlicedDriver(slice_steps=slice_steps)
    driven = driver.run_schedule(executions, schedule)
    observed = [(True, _observe_result(outcome.result)) for outcome in driven]
    assert observed == EXPECTED
