"""End-to-end tests of the §4 system (Affi + MiniML + LCVM) and its checkers."""

import pytest

from repro.core.errors import ConvertibilityError, ErrorCode, LinearityError
from repro.interop_affine import (
    DOUBLE_FORCE_PROGRAM,
    SINGLE_FORCE_PROGRAM,
    AffineModel,
    check_affine_enforcement,
    check_convertibility_soundness,
    check_phantom_erasure_agreement,
    check_type_safety,
    erase,
    make_system,
    phantom_run,
)
from repro.interop_affine.model import LANGUAGE_A, LANGUAGE_B
from repro.lcvm import Int, Pair, Status
from repro.lcvm import machine as lcvm_machine
from repro.lcvm import syntax as t


@pytest.fixture(scope="module")
def system():
    return make_system()


def test_miniml_uses_affi_value(system):
    assert system.run_source("MiniML", "(+ 1 (boundary int 41))").value == Int(42)


def test_miniml_receives_affi_boolean_as_int(system):
    assert system.run_source("MiniML", "(boundary int true)").value == Int(0)
    assert system.run_source("MiniML", "(boundary int false)").value == Int(1)


def test_affi_receives_miniml_int_normalized_to_bool(system):
    result = system.run_source("Affi", "(if (boundary bool 7) 1 2)")
    assert result.value == Int(2)  # any non-zero int normalizes to false


def test_tensor_converts_to_product(system):
    assert system.run_source("MiniML", "(boundary (prod int int) (tensor 1 true))").value == Pair(Int(1), Int(0))


def test_affi_function_used_from_miniml(system):
    source = "((boundary (-> (-> unit int) int) (dlam (a int) a)) (lam (u unit) 5))"
    assert system.run_source("MiniML", source).value == Int(5)


def test_miniml_function_used_from_affi(system):
    source = "((boundary (-o int int) (lam (f (-> unit int)) (+ 1 (f unit)))) 9)"
    assert system.run_source("Affi", source).value == Int(10)


def test_double_force_fails_with_conv_not_type(system):
    result = system.run_source("Affi", DOUBLE_FORCE_PROGRAM)
    assert not result.ok
    assert result.failure is ErrorCode.CONV


def test_single_force_succeeds(system):
    assert system.run_source("Affi", SINGLE_FORCE_PROGRAM).value == Int(4)


def test_nested_boundaries_with_dynamic_variable(system):
    source = "((dlam (a int) (boundary int (+ 1 (boundary int a)))) 4)"
    assert system.run_source("Affi", source).value == Int(5)


def test_static_variable_cannot_cross_into_miniml(system):
    source = "((slam (a int) (boundary int (+ 1 (boundary int a)))) 4)"
    with pytest.raises(LinearityError):
        system.compile_source("Affi", source)


def test_static_lolli_is_not_convertible(system):
    with pytest.raises(ConvertibilityError):
        system.compile_source("MiniML", "(boundary (-> (-> unit int) int) (slam (a int) a))")


def test_boundary_type_mismatch_rejected(system):
    with pytest.raises(ConvertibilityError):
        system.compile_source("MiniML", "(boundary (prod int int) true)")


# -- phantom semantics ------------------------------------------------------------


def test_phantom_run_matches_standard_run_on_compiled_code(system):
    unit = system.compile_source("Affi", "((slam (a int) a) 5)")
    standard = lcvm_machine.run(unit.target_code)
    augmented = phantom_run(unit.target_code)
    assert standard.value == augmented.value == Int(5)


def test_phantom_semantics_rejects_static_duplication():
    from repro.affi.compiler import static_name

    duplicating = t.Let(
        static_name("a"), t.Int(2), t.BinOp("+", t.Var(static_name("a")), t.Var(static_name("a")))
    )
    assert lcvm_machine.run(duplicating).value == Int(4)
    assert phantom_run(duplicating).status is Status.STUCK


def test_phantom_flags_are_consumed_exactly_once():
    from repro.affi.compiler import static_name

    single_use = t.Let(static_name("a"), t.Int(2), t.BinOp("+", t.Var(static_name("a")), t.Int(1)))
    result = phantom_run(single_use)
    assert result.value == Int(3)
    assert result.remaining_flags == frozenset()


def test_erase_removes_protect_wrappers():
    wrapped = t.BinOp("+", t.Protect(t.Int(1), "f"), t.Int(2))
    assert erase(wrapped) == t.BinOp("+", t.Int(1), t.Int(2))


# -- model and checkers --------------------------------------------------------------


def test_affine_model_value_interpretations():
    from repro.affi import types as affi_ty
    from repro.miniml import types as ml_ty

    model = AffineModel()
    world = model.default_world()
    assert model.value_in_type(LANGUAGE_A, affi_ty.BOOL, world, t.Int(1))
    assert not model.value_in_type(LANGUAGE_A, affi_ty.BOOL, world, t.Int(5))
    assert model.value_in_type(LANGUAGE_B, ml_ty.INT, world, t.Int(5))
    assert model.value_in_type(
        LANGUAGE_A, affi_ty.TensorType(affi_ty.INT, affi_ty.BOOL), world, t.Pair(t.Int(3), t.Int(0))
    )
    assert not model.value_in_type(
        LANGUAGE_A, affi_ty.TensorType(affi_ty.INT, affi_ty.BOOL), world, t.Int(3)
    )


def test_soundness_checkers_all_pass(system):
    reports = [
        check_convertibility_soundness(system=system),
        check_type_safety(system=system),
        check_affine_enforcement(system=system),
        check_phantom_erasure_agreement(system=system),
    ]
    for report in reports:
        assert report.ok, str(report)


def test_registered_checks_run_through_the_system(system):
    reports = system.run_soundness_checks()
    assert set(reports) == {
        "convertibility-soundness",
        "type-safety",
        "affine-enforcement",
        "phantom-erasure",
    }
    assert all(report.ok for report in reports.values())
