"""Tests for the StackLang small-step machine (Fig. 2)."""

import pytest

from repro.core.errors import ErrorCode, StuckError
from repro.stacklang import (
    DUP,
    SWAP,
    Add,
    Alloc,
    Arr,
    Call,
    Fail,
    Idx,
    If0,
    Lam,
    Len,
    Less,
    Loc,
    Num,
    Push,
    Read,
    Status,
    Thunk,
    Var,
    Write,
    initial_config,
    program,
    run,
    step,
)


def test_push_and_terminate_with_value():
    result = run(program(Push(Num(5))))
    assert result.status is Status.VALUE
    assert result.value == Num(5)
    assert result.steps == 1


def test_empty_program_terminates_empty():
    result = run(())
    assert result.status is Status.EMPTY


def test_add_sums_top_two():
    result = run(program(Push(Num(2)), Push(Num(3)), Add()))
    assert result.value == Num(5)


def test_add_with_too_few_operands_fails_type():
    result = run(program(Push(Num(2)), Add()))
    assert result.status is Status.FAIL
    assert result.failure_code is ErrorCode.TYPE


def test_add_with_non_number_fails_type():
    result = run(program(Push(Arr(())), Push(Num(1)), Add()))
    assert result.failure_code is ErrorCode.TYPE


def test_less_true_pushes_zero():
    # Stack is S, n', n with n on top; result is 0 when n < n'.
    result = run(program(Push(Num(10)), Push(Num(3)), Less()))
    assert result.value == Num(0)


def test_less_false_pushes_one():
    result = run(program(Push(Num(3)), Push(Num(10)), Less()))
    assert result.value == Num(1)


def test_if0_takes_then_branch_on_zero():
    result = run(program(Push(Num(0)), If0((Push(Num(100)),), (Push(Num(200)),))))
    assert result.value == Num(100)


def test_if0_takes_else_branch_on_nonzero():
    result = run(program(Push(Num(7)), If0((Push(Num(100)),), (Push(Num(200)),))))
    assert result.value == Num(200)


def test_if0_on_empty_stack_fails_type():
    result = run(program(If0((), ())))
    assert result.failure_code is ErrorCode.TYPE


def test_if0_on_non_number_fails_type():
    result = run(program(Push(Thunk(())), If0((), ())))
    assert result.failure_code is ErrorCode.TYPE


def test_lam_substitutes_single_binder():
    result = run(program(Push(Num(9)), Lam(("x",), (Push(Var("x")), Push(Var("x")), Add()))))
    assert result.value == Num(18)


def test_lam_multiple_binders_pop_top_first():
    # lam x2, x1 binds x2 to the top of the stack (per the Fig. 3 pair compile).
    result = run(
        program(
            Push(Num(1)),
            Push(Num(2)),
            Lam(("x2", "x1"), (Push(Arr((Var("x1"), Var("x2")))),)),
        )
    )
    assert result.value == Arr((Num(1), Num(2)))


def test_lam_with_too_few_values_fails_type():
    result = run(program(Lam(("x",), ())))
    assert result.failure_code is ErrorCode.TYPE


def test_call_runs_thunk():
    result = run(program(Push(Thunk((Push(Num(3)), Push(Num(4)), Add()))), Call()))
    assert result.value == Num(7)


def test_call_on_non_thunk_fails_type():
    result = run(program(Push(Num(1)), Call()))
    assert result.failure_code is ErrorCode.TYPE


def test_idx_in_bounds():
    result = run(program(Push(Arr((Num(10), Num(20), Num(30)))), Push(Num(2)), Idx()))
    assert result.value == Num(30)


def test_idx_out_of_bounds_fails_idx():
    result = run(program(Push(Arr((Num(10),))), Push(Num(3)), Idx()))
    assert result.status is Status.FAIL
    assert result.failure_code is ErrorCode.IDX


def test_idx_negative_fails_idx():
    result = run(program(Push(Arr((Num(10),))), Push(Num(-1)), Idx()))
    assert result.failure_code is ErrorCode.IDX


def test_idx_on_non_array_fails_type():
    result = run(program(Push(Num(1)), Push(Num(0)), Idx()))
    assert result.failure_code is ErrorCode.TYPE


def test_len_pushes_length():
    result = run(program(Push(Arr((Num(1), Num(2)))), Len()))
    assert result.value == Num(2)


def test_alloc_read_roundtrip():
    result = run(program(Push(Num(42)), Alloc(), Read()))
    assert result.value == Num(42)


def test_alloc_returns_location_and_extends_heap():
    result = run(program(Push(Num(42)), Alloc()))
    assert isinstance(result.value, Loc)
    assert result.heap[result.value.address] == Num(42)


def test_write_updates_heap():
    result = run(program(Push(Num(1)), Alloc(), DUP, Push(Num(99)), Write(), Read()))
    assert result.value == Num(99)


def test_write_to_missing_location_fails_type():
    result = run(program(Push(Loc(17)), Push(Num(1)), Write()))
    assert result.failure_code is ErrorCode.TYPE


def test_read_missing_location_fails_type():
    result = run(program(Push(Loc(17)), Read()))
    assert result.failure_code is ErrorCode.TYPE


def test_fail_instruction_aborts_with_code():
    result = run(program(Push(Num(1)), Fail(ErrorCode.CONV), Push(Num(2))))
    assert result.status is Status.FAIL
    assert result.failure_code is ErrorCode.CONV


def test_swap_macro_exchanges_top_two():
    result = run(program(Push(Num(1)), Push(Num(2)), SWAP, Add()))
    assert result.value == Num(3)
    result = run(program(Push(Arr(())), Push(Num(2)), SWAP))
    assert result.value == Arr(())


def test_dup_macro_duplicates_top():
    result = run(program(Push(Num(4)), DUP, Add()))
    assert result.value == Num(8)


def test_push_unsubstituted_variable_fails_type():
    result = run(program(Push(Var("x"))))
    assert result.failure_code is ErrorCode.TYPE


def test_out_of_fuel_status():
    # An infinite loop: a thunk that pushes itself and calls itself.
    loop_body = (Push(Var("self")), Push(Var("self")), Call())
    looping = program(
        Push(Thunk((Lam(("self",), loop_body),))),
        DUP,
        Call(),
    )
    result = run(looping, fuel=50)
    assert result.status is Status.OUT_OF_FUEL


def test_step_on_terminal_config_raises():
    with pytest.raises(StuckError):
        step(initial_config((), {}, []))


def test_heap_is_not_shared_between_runs():
    prog = program(Push(Num(0)), Alloc())
    first = run(prog)
    second = run(prog)
    assert first.heap == second.heap == {0: Num(0)}
