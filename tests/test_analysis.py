"""The static-analysis tier: analyses, verified optimizing backend, serving.

Four layers of guarantees:

* **analyses** — crossing-site enumeration matches the workload generators'
  known boundary counts (with types, rules, and depths attached), effect
  summaries report exactly the operations a program can perform, and reports
  are plain data that survive pickling;
* **verification** — the StackLang stack-effect verifier statically rejects
  definite underflow with a structured error (and that rejection surfaces as
  a *frontend* error through the pipeline, like a typecheck failure), while
  never rejecting any known-good corpus program (no false positives);
* **the optimizing backend** — ``cek-opt`` agrees with the substitution
  oracle on values, failures, *and* fuel exhaustion (hypothesis-driven over
  random programs in all three systems), and the LCVM source-to-source
  optimizer is raw-heap-preserving: the optimized program's post-``callgc``
  heap equals the original's address-for-address on the GC-precision suite;
* **glue pre-resolution + serving** — the compile phase performs zero
  dynamic convertibility lookups when pre-resolution is on (counter
  differential against the ``preresolve=False`` baseline), ``analyze_only``
  requests return the cached report without starting an execution (and
  without consuming admission slots), and cost hints weigh the pool's
  load-aware placement deterministically.
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import analysis
from repro.analysis import (
    CROSSING_STEP_COST,
    StaticVerificationError,
    enumerate_crossings,
    lcvm_effects,
    optimize,
    verify_program,
)
from repro.core.errors import SourceError
from repro.interop_affine import make_system as make_affine_system
from repro.interop_l3 import make_system as make_l3_system
from repro.interop_refs import make_system as make_refs_system
from repro.lcvm import cek as lcvm_cek
from repro.lcvm import machine as lcvm_machine
from repro.lcvm.machine import Status
from repro.lcvm.syntax import (
    App,
    Assign,
    BinOp,
    CallGc,
    Deref,
    Fst,
    If,
    Inl,
    Int,
    Lam,
    Let,
    Match,
    NewRef,
    Pair,
    Var,
)
from repro.serve import Request, make_default_scheduler
from repro.serve.pool import WorkerPool
from repro.stacklang import cek as stack_cek
from repro.stacklang.syntax import Add, Idx, Push, program
from repro.util.workloads import (
    nested_ml_affi_boundary,
    nested_ml_l3_boundary,
    nested_refll_boundary,
)

_SYSTEMS = {
    "refs": make_refs_system(),
    "affine": make_affine_system(),
    "l3": make_l3_system(),
}

#: Per system: workload generator, host language, crossings per depth unit.
_WORKLOADS = {
    "refs": (nested_refll_boundary, "RefLL", 2),
    "affine": (nested_ml_affi_boundary, "MiniML", 2),
    "l3": (nested_ml_l3_boundary, "MiniML", 1),
}


# ---------------------------------------------------------------------------
# Analyses: crossings, effects, reports
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("system_name", sorted(_WORKLOADS))
@pytest.mark.parametrize("depth", [1, 3, 7])
def test_crossing_enumeration_matches_workload_shape(system_name, depth):
    generator, language, per_depth = _WORKLOADS[system_name]
    system = _SYSTEMS[system_name]
    unit = system.compile_source(language, generator(depth))
    report = unit.analysis
    assert report is not None
    assert report.crossing_count == depth * per_depth
    # Crossings alternate host languages and record the embedded type pair.
    languages = {system.language_a.name, system.language_b.name}
    for site in report.crossings:
        assert site.host_language in languages
        assert site.host_type
        assert site.foreign_type
    # Pre-resolution is on by default, so every site carries its glue rule.
    assert all(site.rule for site in report.crossings)
    # refs/affine truly nest (each level wraps the previous source inside a
    # boundary pair, so depth climbs); l3 chains sibling crossings at depth 0.
    max_depth = max(site.depth for site in report.crossings)
    if system_name == "l3":
        assert max_depth == 0
    else:
        assert max_depth >= depth
    assert report.estimated_steps == report.node_count + CROSSING_STEP_COST * report.crossing_count


def test_pure_program_reports_no_crossings_and_no_effects():
    system = _SYSTEMS["affine"]
    report = system.compile_source("MiniML", "(+ 1 (+ 2 3))").analysis
    assert report.crossing_count == 0
    assert not report.effects.allocates
    assert not report.effects.may_diverge
    assert report.verified
    # Constant folding collapses pure arithmetic to a single literal.
    assert report.optimized_node_count < report.node_count


def test_lcvm_effect_summary_flags_each_operation():
    assert not lcvm_effects(BinOp("+", Int(1), Int(2))).allocates
    assert lcvm_effects(NewRef(Int(1))).allocates
    assert lcvm_effects(Deref(NewRef(Int(1)))).reads_refs
    assert lcvm_effects(Assign(NewRef(Int(1)), Int(2))).writes_refs
    assert lcvm_effects(CallGc()).calls_gc
    assert lcvm_effects(App(Lam("x", Var("x")), Int(1))).may_diverge
    assert not lcvm_effects(Int(1)).may_fail


def test_reports_are_plain_picklable_data():
    system = _SYSTEMS["l3"]
    report = system.compile_source("MiniML", nested_ml_l3_boundary(2)).analysis
    clone = pickle.loads(pickle.dumps(report))
    assert clone.to_dict() == report.to_dict()
    payload = report.to_dict()
    assert payload["crossing_count"] == 2
    assert isinstance(payload["effects"], dict)
    assert "ref" in payload["crossings"][0]["host_type"]


def test_enumerate_crossings_nests_depths():
    unit = _SYSTEMS["refs"].compile_source("RefLL", nested_refll_boundary(3))
    sites = enumerate_crossings(
        unit.term, host_language="RefLL", languages=("RefHL", "RefLL")
    )
    assert [site.depth for site in sites] == sorted(site.depth for site in sites)


# ---------------------------------------------------------------------------
# StackLang stack-effect verification
# ---------------------------------------------------------------------------


def test_verifier_rejects_crafted_underflow_with_structured_issue():
    verification = verify_program(program(Add()))
    assert not verification.ok
    (issue,) = verification.errors
    assert issue.kind == "underflow"
    assert issue.needed == 2
    assert issue.available == 0
    assert "underflow" in str(issue)


def test_verifier_accepts_all_compiled_corpus_programs():
    for system_name, (generator, language, _per_depth) in _WORKLOADS.items():
        unit = _SYSTEMS[system_name].compile_source(language, generator(4))
        if system_name == "refs":  # the stacklang-targeting system
            assert verify_program(unit.target_code).ok


def test_underflow_is_a_structured_frontend_error_through_the_pipeline():
    """A compiler emitting an underflowing program is rejected *statically*
    by the analyzer hook — the machine never runs it — and the rejection is
    a SourceError like any parse/typecheck failure."""
    system = make_refs_system()  # fresh: we sabotage its compiler
    frontend = system.frontend("RefLL")
    frontend.compile = lambda term: program(Idx(), Push(Int(0) if False else 0))
    frontend.clear_cache()
    with pytest.raises(StaticVerificationError) as excinfo:
        system.compile_source("RefLL", "1")
    assert isinstance(excinfo.value, SourceError)
    assert excinfo.value.issues
    assert excinfo.value.issues[0].kind == "underflow"


def test_verifier_handles_branches_and_thunks():
    from repro.stacklang.syntax import If0, Lam as StackLam

    # Balanced branches from a known depth verify cleanly.
    ok = verify_program(program(Push(1), If0((Push(2),), (Push(3),))))
    assert ok.ok
    # A thunk body underflowing is caught inside the lambda.
    bad = verify_program(program(Push(1), StackLam(("x",), (Add(),))))
    assert not bad.ok
    assert any("thunk" in issue.location or issue.kind == "underflow" for issue in bad.errors)


# ---------------------------------------------------------------------------
# cek-opt == substitution oracle (values, failures, fuel exhaustion)
# ---------------------------------------------------------------------------


def _sources(system_name):
    generator, _language, _per_depth = _WORKLOADS[system_name]
    leaves = st.integers(0, 5).map(str)

    def extend(child):
        return st.one_of(
            st.builds("(+ {} {})".format, child, child),
            st.builds(lambda inner, d: generator(d).replace("1", inner, 1), child, st.integers(1, 3)),
        )

    return st.recursive(leaves, extend, max_leaves=5)


@pytest.mark.parametrize("system_name", sorted(_WORKLOADS))
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_cek_opt_matches_substitution_oracle(system_name, data):
    system = _SYSTEMS[system_name]
    _generator, language, _per_depth = _WORKLOADS[system_name]
    source = data.draw(_sources(system_name))
    try:
        unit = system.compile_source(language, source)
    except SourceError:
        return  # frontend rejection is backend-independent by construction
    oracle = system.run_compiled(unit.target_code, fuel=500_000, backend="substitution")
    opt = system.run_compiled(unit.target_code, fuel=500_000, backend="cek-opt")
    assert opt.value == oracle.value, source
    assert opt.failure == oracle.failure, source


@pytest.mark.parametrize("system_name", sorted(_WORKLOADS))
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(fuel=st.integers(min_value=1, max_value=40))
def test_cek_opt_fuel_exhaustion_is_structured(system_name, fuel):
    """Starved of fuel, cek-opt either finishes with the oracle's exact
    outcome or reports structured fuel exhaustion — never a wrong answer."""
    generator, language, _per_depth = _WORKLOADS[system_name]
    system = _SYSTEMS[system_name]
    unit = system.compile_source(language, generator(6))
    oracle = system.run_compiled(unit.target_code, fuel=500_000, backend="substitution")
    opt = system.run_compiled(unit.target_code, fuel=fuel, backend="cek-opt")
    if opt.failure == Status.OUT_OF_FUEL.value:
        assert opt.steps <= fuel
    else:
        assert (opt.value, opt.failure) == (oracle.value, oracle.failure)


def test_cek_opt_registered_in_all_three_systems_without_changing_default():
    for system in _SYSTEMS.values():
        assert "cek-opt" in system.target.backend_names()
        assert "cek-opt" in system.target.executions
        assert "cek-opt" in system.target.restores
        assert system.target.default_backend == "cek-compiled"


def test_typecheck_failure_path_is_backend_independent():
    system = _SYSTEMS["affine"]
    with pytest.raises(SourceError):
        system.run_source("MiniML", "(boundary int (ref 1))", backend="cek-opt")
    with pytest.raises(SourceError):
        system.run_source("MiniML", "(boundary int (ref 1))", backend="substitution")


# ---------------------------------------------------------------------------
# The LCVM optimizer is raw-heap-preserving
# ---------------------------------------------------------------------------

_GC_PROGRAMS = [
    Let(
        "keep",
        NewRef(Int(1)),
        Let("dead", NewRef(Int(2)), Let("_", CallGc(), Deref(Var("keep")))),
    ),
    Let(
        "dead",
        NewRef(Int(7)),
        Let("f", Lam("x", Var("x")), Let("_", CallGc(), App(Var("f"), Int(3)))),
    ),
    Let(
        "a",
        NewRef(Int(1)),
        Match(Inl(Int(0)), "x", Let("_", CallGc(), Int(9)), "y", Deref(Var("a"))),
    ),
    Let("p", Pair(NewRef(Int(4)), Int(0)), Let("_", CallGc(), Deref(Fst(Var("p"))))),
    Let("c", If(Int(0), NewRef(Int(5)), NewRef(Int(6))), Let("_", CallGc(), Deref(Var("c")))),
]


@pytest.mark.parametrize(
    "expr", _GC_PROGRAMS, ids=[str(expr)[:48] for expr in _GC_PROGRAMS]
)
def test_optimizer_preserves_raw_postgc_heaps(expr):
    base = lcvm_machine.run(expr, fuel=500_000)
    opt = lcvm_machine.run(optimize(expr), fuel=500_000)
    assert opt.value == base.value
    assert dict(opt.heap.cells) == dict(base.heap.cells)
    assert opt.heap.collections == base.heap.collections
    assert opt.heap.reclaimed == base.heap.reclaimed


@pytest.mark.parametrize(
    "expr,expected",
    [
        (BinOp("+", Int(2), Int(3)), Int(5)),
        (BinOp("<", Int(1), Int(2)), Int(0)),
        (If(Int(0), Int(7), Int(8)), Int(7)),
        (Let("x", Int(4), BinOp("*", Var("x"), Var("x"))), Int(16)),
        (Match(Inl(Int(3)), "x", Var("x"), "y", Int(0)), Int(3)),
    ],
)
def test_optimizer_folds_closed_constants(expr, expected):
    assert optimize(expr) == expected


def test_optimizer_keeps_effectful_bindings():
    expr = Let("dead", NewRef(Int(1)), Int(2))
    assert optimize(expr) == expr  # the allocation is observable (heap shape)


def test_optimizer_declines_open_scrutinee_match_fold():
    open_match = Match(Inl(Lam("x", Var("free"))), "l", Var("l"), "r", Int(0))
    optimized = optimize(open_match)
    assert isinstance(optimized, Match)  # capture-unsafe fold must not fire


# ---------------------------------------------------------------------------
# StackLang superinstruction fusion
# ---------------------------------------------------------------------------


def test_fused_compile_is_length_preserving_and_counted():
    system = _SYSTEMS["refs"]
    unit = system.compile_source("RefLL", nested_refll_boundary(4))
    before = stack_cek.fused_cache_stats()["fused_pairs"]
    plain = stack_cek._compile(unit.target_code)
    fused = stack_cek._compile_fused(unit.target_code)
    assert len(plain) == len(fused)
    assert stack_cek.fused_cache_stats()["fused_pairs"] > before


def test_run_optimized_agrees_on_values_and_failures():
    system = _SYSTEMS["refs"]
    for source in ["(+ 1 2)", nested_refll_boundary(5), "(! (ref 9))"]:
        unit = system.compile_source("RefLL", source)
        base = system.run_compiled(unit.target_code, backend="cek-compiled")
        opt = system.run_compiled(unit.target_code, backend="cek-opt")
        assert (opt.value, opt.failure) == (base.value, base.failure)
        assert opt.steps <= base.steps


# ---------------------------------------------------------------------------
# Glue pre-resolution counters
# ---------------------------------------------------------------------------

_FACTORIES = {
    "refs": make_refs_system,
    "affine": make_affine_system,
    "l3": make_l3_system,
}


@pytest.mark.parametrize("system_name", sorted(_FACTORIES))
def test_preresolution_eliminates_compile_phase_lookups(system_name):
    generator, language, per_depth = _WORKLOADS[system_name]
    depth = 4
    source = generator(depth)

    def compile_phase_stats(preresolve):
        system = _FACTORIES[system_name](preresolve=preresolve)
        frontend = system.frontend(language)
        term = frontend.parse_expr(source)
        frontend.typecheck(term)
        system.convertibility.reset_stats()
        frontend.compile(term)
        return system.convertibility.stats()

    on = compile_phase_stats(True)
    off = compile_phase_stats(False)
    crossings = depth * per_depth
    assert on["lookups"] == 0  # zero per-crossing dynamic lookups
    assert on["preresolved"] == crossings
    assert off["preresolved"] == 0
    assert off["lookups"] == crossings  # the dynamic baseline pays per site


@pytest.mark.parametrize("system_name", sorted(_FACTORIES))
def test_cache_stats_surface_convertibility_counters(system_name):
    system = _FACTORIES[system_name]()
    generator, language, _per_depth = _WORKLOADS[system_name]
    system.compile_source(language, generator(2))
    stats = system.cache_stats()["convertibility"]
    for key in ("entries", "hits", "misses", "lookups", "preresolved"):
        assert key in stats
    assert stats["preresolved"] > 0


@pytest.mark.parametrize("system_name", sorted(_FACTORIES))
def test_preresolve_off_is_observation_equivalent(system_name):
    generator, language, _per_depth = _WORKLOADS[system_name]
    source = generator(3)
    on = _FACTORIES[system_name]().run_source(language, source)
    off = _FACTORIES[system_name](preresolve=False).run_source(language, source)
    assert (on.value, on.failure, on.steps) == (off.value, off.failure, off.steps)


# ---------------------------------------------------------------------------
# Serving integration: analyze_only, admission, cost-weighted placement
# ---------------------------------------------------------------------------


def test_analyze_only_returns_report_without_executing():
    scheduler = make_default_scheduler(slice_steps=16)
    response = scheduler.submit(
        Request(language="MiniML", system="affine", source=nested_ml_affi_boundary(3), analyze_only=True)
    )
    assert response.error is None
    assert response.result is None  # nothing ran
    assert response.slices == 0
    assert response.report is not None
    assert response.report["crossing_count"] == 6
    assert response.report["estimated_steps"] > 0
    assert response.report["effects"]["may_diverge"] is False
    assert "analyzed" in str(response)
    # The report is exactly the pipeline-cached unit's analysis.
    unit = scheduler.systems["affine"].compile_source("MiniML", nested_ml_affi_boundary(3))
    assert response.report == unit.analysis.to_dict()


def test_analyze_only_requests_do_not_consume_admission_slots():
    scheduler = make_default_scheduler(slice_steps=16, max_inflight=1)
    responses = scheduler.serve(
        [
            Request(language="RefLL", source="(+ 1 1)", analyze_only=True),
            Request(language="RefLL", source="(+ 1 2)"),
            Request(language="RefLL", source="(+ 1 3)"),
        ]
    )
    assert responses[0].report is not None and not responses[0].rejected_overload
    assert responses[1].result is not None  # the single inflight slot
    assert responses[2].rejected_overload  # the true overflow tail


def test_analyze_only_never_coalesces_and_frontend_errors_stay_structured():
    scheduler = make_default_scheduler(slice_steps=16)
    good = Request(language="RefLL", source="(+ 1 1)", analyze_only=True)
    assert scheduler.batch_key(good) is None
    responses = scheduler.serve_batched([good, good])
    assert all(response.report is not None for response in responses)
    bad = scheduler.submit(
        Request(language="MiniML", system="affine", source="(boundary int (ref 1))", analyze_only=True)
    )
    assert bad.error is not None and bad.report is None


def test_analysis_rides_the_cross_process_artifact_hooks():
    scheduler = make_default_scheduler(slice_steps=16)
    request = Request(language="RefLL", source=nested_refll_boundary(2))
    store_key = scheduler.pipeline_key(request)
    scheduler.systems["refs"].compile_source("RefLL", request.source)
    unit = scheduler.export_cache_entry(store_key)
    assert unit is not None and unit.analysis is not None
    clone = pickle.loads(pickle.dumps(unit))  # what the pool actually ships
    assert clone.analysis.to_dict() == unit.analysis.to_dict()


def test_cost_hint_weighs_load_aware_placement():
    pool = WorkerPool(workers=2, slice_steps=64, balance_load=True, top_k=2)
    try:
        cheap = Request(language="RefLL", source="(+ 1 1)")
        costly = Request(language="RefLL", source="(+ 1 1)", cost_hint=64 * 64)
        assert pool._weight(cheap) == 1
        assert pool._weight(costly) == 1 + min(8, (64 * 64) // 64)
        assert pool._weight(Request(language="RefLL", source="1", cost_hint=0)) == 1
        # Deterministic: same hint, same weight, same placement inputs.
        assert pool._weight(costly) == pool._weight(costly)
    finally:
        pool.close()


def test_estimated_steps_track_actual_cost_ordering():
    """The admission hint's ordering matches reality: a deeper crossing
    workload gets a larger estimate *and* really takes more steps."""
    system = _SYSTEMS["l3"]
    shallow = system.compile_source("MiniML", nested_ml_l3_boundary(2))
    deep = system.compile_source("MiniML", nested_ml_l3_boundary(8))
    assert deep.analysis.estimated_steps > shallow.analysis.estimated_steps
    shallow_run = system.run_compiled(shallow.target_code)
    deep_run = system.run_compiled(deep.target_code)
    assert deep_run.steps > shallow_run.steps
