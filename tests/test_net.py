"""The network serving tier (:mod:`repro.serve.net` / :mod:`repro.serve.wire`).

What is pinned here:

* **net == sequential** — a mixed batch served through router + TCP workers
  is observably identical to the router's own sequential baseline;
* **the wire format** — frame encode/decode round-trips, oversized and
  truncated frames are structured errors, and HELLO/WELCOME version
  negotiation rejects a mismatched peer with an ``ERROR`` frame (surfaced
  to clients as :class:`~repro.serve.wire.ProtocolError`);
* **placement** — ring placement is deterministic and affinity acts as a
  locality hint; load-aware dispatch spreads a hot key over its top-k
  candidates;
* **elastic membership** — workers join and leave at runtime; a join moves
  only a bounded fraction of placements, all onto the new endpoint;
* **reliability over the wire** — an injected ``net.drop`` recovers by
  checkpoint migration onto a surviving endpoint (``migrated_from``,
  breaker accounting); ``net.slow`` plus a per-attempt deadline turns a
  wedged link into the same recovery path; a router with no workers serves
  locally;
* **the store as a service** — artifacts published by one endpoint warm
  others (``shared_cache_hit``), and clients can FETCH/PUBLISH directly.

Everything runs on localhost with in-process worker threads — no worker
*processes* here (test_pool.py owns that axis); the network tier reuses the
pool's shard helpers, so process isolation composes unchanged.
"""

import pickle
import socket
import struct

import pytest

from repro.serve import (
    DispatchPolicy,
    Fault,
    FaultPlan,
    HashRing,
    NetClient,
    NetRouter,
    NetWorker,
    Request,
    WIRE_VERSION,
    make_default_scheduler,
)
from repro.serve.wire import (
    ERROR,
    HELLO,
    MAX_FRAME_BYTES,
    ProtocolError,
    REQUEST,
    decode_header,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.util.workloads import (
    nested_ml_affi_boundary,
    nested_ml_l3_boundary,
    nested_refll_boundary,
)

SLICE_STEPS = 16


def _observable(response):
    """The placement- and transport-independent view of a response."""
    result = response.result
    return (
        response.error is None,
        None if result is None else str(result.value),
        None if result is None else str(result.failure),
        None if result is None else result.steps,
    )


def _mixed_requests():
    return [
        Request(language="RefLL", source=nested_refll_boundary(5), request_id="refs-deep"),
        Request(language="RefLL", source=nested_refll_boundary(3), backend="substitution", request_id="refs-oracle"),
        Request(language="MiniML", system="affine", source=nested_ml_affi_boundary(4), request_id="affine-a"),
        Request(language="MiniML", system="affine", source=nested_ml_affi_boundary(4), request_id="affine-dup"),
        Request(language="Affi", source="(if (boundary bool 7) 1 2)", request_id="affi-small"),
        Request(language="MiniML", system="l3", source=nested_ml_l3_boundary(4), request_id="l3-deep"),
        Request(language="MiniML", system="affine", source=nested_ml_affi_boundary(4), fuel=7, request_id="starved"),
        Request(language="Klingon", source="(nuqneH)", request_id="bad-language"),
    ]


def _fleet(worker_count=2, fault_plans=None, dispatch=None, **router_kwargs):
    """Start ``worker_count`` workers and a router wired to all of them."""
    workers = []
    for endpoint_id in range(worker_count):
        plan = (fault_plans or {}).get(endpoint_id)
        worker = NetWorker(endpoint_id=endpoint_id, slice_steps=SLICE_STEPS, fault_plan=plan)
        worker.start()
        workers.append(worker)
    router = NetRouter(slice_steps=SLICE_STEPS, dispatch=dispatch, **router_kwargs)
    router.start()
    for worker in workers:
        router.add_worker(worker.address)
    return router, workers


def _shutdown(router, workers):
    router.stop()
    for worker in workers:
        worker.stop()


# -- the wire format ----------------------------------------------------------


def test_frame_roundtrip():
    body = {"hello": [1, 2, 3], "nested": ("a", b"bytes")}
    frame = encode_frame(REQUEST, body)
    length, frame_type = decode_header(frame[:5])
    assert frame_type == REQUEST
    assert length == len(frame) - 5
    assert pickle.loads(frame[5:]) == body


def test_oversized_frame_is_rejected():
    with pytest.raises(ProtocolError):
        encode_frame(REQUEST, b"x" * (MAX_FRAME_BYTES + 1))
    huge = struct.pack(">IB", MAX_FRAME_BYTES + 1, REQUEST)
    with pytest.raises(ProtocolError):
        decode_header(huge)


def test_socketpair_send_recv_roundtrip():
    left, right = socket.socketpair()
    try:
        send_frame(left, REQUEST, ("serve", [1, 2, 3]))
        frame_type, body = recv_frame(right)
        assert frame_type == REQUEST
        assert body == ("serve", [1, 2, 3])
    finally:
        left.close()
        right.close()


# -- version negotiation ------------------------------------------------------


def test_client_version_mismatch_is_rejected_with_structured_error():
    router = NetRouter(slice_steps=SLICE_STEPS)
    router.start()
    try:
        with pytest.raises(ProtocolError) as excinfo:
            NetClient(*router.address, version=WIRE_VERSION + 1)
        assert "version" in str(excinfo.value)
        # A well-versioned client on the same router still connects fine.
        with NetClient(*router.address) as client:
            assert client.heartbeat()["role"] == "router"
    finally:
        router.stop()


def test_worker_rejects_mismatched_router_version():
    worker = NetWorker(endpoint_id=0, slice_steps=SLICE_STEPS)
    worker.start()
    try:
        sock = socket.create_connection(worker.address, timeout=5)
        try:
            send_frame(sock, HELLO, {"version": 99})
            frame_type, body = recv_frame(sock)
            assert frame_type == ERROR
            assert body["code"] == "version"
            assert str(WIRE_VERSION) in body["message"]
        finally:
            sock.close()
    finally:
        worker.stop()


# -- serving ------------------------------------------------------------------


def test_net_matches_sequential_baseline():
    router, workers = _fleet(worker_count=2)
    try:
        requests = _mixed_requests()
        baseline = router.run_sequential(requests)
        served = router.run_batch(requests)
        assert [r.request.request_id for r in served] == [r.request_id for r in requests]
        for expected, actual in zip(baseline, served):
            assert _observable(expected) == _observable(actual)
        assert all(response.shard in (0, 1) for response in served)
    finally:
        _shutdown(router, workers)


def test_client_roundtrip_matches_direct_dispatch():
    router, workers = _fleet(worker_count=2)
    try:
        requests = _mixed_requests()
        baseline = router.run_sequential(requests)
        with NetClient(*router.address) as client:
            served = client.run_batch(requests)
        for expected, actual in zip(baseline, served):
            assert _observable(expected) == _observable(actual)
    finally:
        _shutdown(router, workers)


def test_router_with_no_workers_serves_locally():
    router = NetRouter(slice_steps=SLICE_STEPS)
    router.start()
    try:
        requests = _mixed_requests()
        baseline = router.run_sequential(requests)
        served = router.run_batch(requests)
        for expected, actual in zip(baseline, served):
            assert _observable(expected) == _observable(actual)
        assert router.stats()["counters"]["served_locally"] == len(requests)
    finally:
        router.stop()


def test_placement_is_deterministic_and_affinity_is_honoured():
    router, workers = _fleet(worker_count=2)
    try:
        request = Request(language="Affi", source="(if (boundary bool 7) 1 2)")
        home = router.endpoint_for(request)
        assert home == router.endpoint_for(request)
        # Affinity overrides the routed placement key (locality hint).
        scheduler = make_default_scheduler(slice_steps=SLICE_STEPS)
        ring = HashRing([0, 1])
        for affinity in ("alpha", "beta", "gamma"):
            pinned = Request(language="Affi", source="(if (boundary bool 7) 1 2)", affinity=affinity)
            assert router.endpoint_for(pinned) == ring.node_for(scheduler.placement_key(pinned))
    finally:
        _shutdown(router, workers)


def test_load_aware_dispatch_spreads_a_hot_key():
    dispatch = DispatchPolicy(top_k=2, balance_load=True)
    router, workers = _fleet(worker_count=3, dispatch=dispatch)
    try:
        hot = [
            Request(language="Affi", source="(if (boundary bool 7) 1 2)", request_id=f"hot-{index}")
            for index in range(8)
        ]
        served = router.run_batch(hot)
        shards = {response.shard for response in served}
        assert len(shards) == 2, "top-2 load-aware dispatch must use exactly the 2 candidates"
        counts = [sum(1 for r in served if r.shard == shard) for shard in shards]
        assert counts == [4, 4], "round-robin by queue depth must split the hot key evenly"
        assert router.stats()["counters"]["diverted"] >= 1
        baseline = router.run_sequential(hot)
        for expected, actual in zip(baseline, served):
            assert _observable(expected) == _observable(actual)
    finally:
        _shutdown(router, workers)


def test_static_placement_keeps_a_hot_key_on_one_endpoint():
    router, workers = _fleet(worker_count=3, dispatch=DispatchPolicy(top_k=1, balance_load=False))
    try:
        hot = [
            Request(language="Affi", source="(if (boundary bool 7) 1 2)", request_id=f"hot-{index}")
            for index in range(6)
        ]
        served = router.run_batch(hot)
        assert len({response.shard for response in served}) == 1
    finally:
        _shutdown(router, workers)


# -- elastic membership -------------------------------------------------------


def test_join_remaps_a_bounded_fraction_onto_the_new_endpoint():
    router, workers = _fleet(worker_count=2, dispatch=DispatchPolicy(top_k=1, balance_load=False))
    try:
        probes = [
            Request(language="Affi", source="(if (boundary bool 7) 1 2)", affinity=f"key-{index}")
            for index in range(64)
        ]
        before = {index: router.endpoint_for(request) for index, request in enumerate(probes)}
        joiner = NetWorker(endpoint_id=2, slice_steps=SLICE_STEPS)
        joiner.start()
        workers.append(joiner)
        assert router.add_worker(joiner.address) == 2
        after = {index: router.endpoint_for(request) for index, request in enumerate(probes)}
        moved = [index for index in before if before[index] != after[index]]
        assert moved, "the joiner must take over some placements"
        assert len(moved) / len(probes) <= 0.65, "a join must not reshuffle most keys"
        assert all(after[index] == 2 for index in moved), "keys move only to the joiner"
        # The grown fleet still serves correctly.
        requests = _mixed_requests()
        baseline = router.run_sequential(requests)
        for expected, actual in zip(baseline, router.run_batch(requests)):
            assert _observable(expected) == _observable(actual)
    finally:
        _shutdown(router, workers)


def test_leave_restores_prior_placement():
    router, workers = _fleet(worker_count=3)
    try:
        probes = [
            Request(language="Affi", source="(if (boundary bool 7) 1 2)", affinity=f"key-{index}")
            for index in range(32)
        ]
        before = {index: router.endpoint_for(request) for index, request in enumerate(probes)}
        router.remove_worker(2)
        assert 2 not in router.endpoint_ids()
        router.add_worker(workers[2].address)
        after = {index: router.endpoint_for(request) for index, request in enumerate(probes)}
        assert after == before
    finally:
        _shutdown(router, workers)


def test_duplicate_registration_is_rejected():
    router, workers = _fleet(worker_count=1)
    try:
        with pytest.raises(ValueError):
            router.add_worker(workers[0].address)
    finally:
        _shutdown(router, workers)


# -- reliability over the wire ------------------------------------------------


def test_net_drop_recovers_by_checkpoint_migration():
    scheduler = make_default_scheduler(slice_steps=SLICE_STEPS)
    requests = _mixed_requests()
    ring = HashRing([0, 1])
    victim = ring.node_for(scheduler.placement_key(requests[0]))
    plan = FaultPlan(
        [Fault(site="net.drop", request_id="refs-deep", at_slice=2, times=1, shard=victim)]
    )
    router, workers = _fleet(
        worker_count=2,
        fault_plans={victim: plan},
        dispatch=DispatchPolicy(top_k=1, balance_load=False),
    )
    try:
        baseline = router.run_sequential(requests)
        served = router.run_batch(requests)
        for expected, actual in zip(baseline, served):
            assert _observable(expected) == _observable(actual)
        survivor = 1 - victim
        migrated = [r for r in served if r.migrated_from is not None]
        assert migrated, "the dropped dispatch must recover by migration"
        assert all(r.migrated_from == victim and r.shard == survivor for r in migrated)
        assert any(r.request.request_id == "refs-deep" for r in migrated)
        assert all(r.attempts == 2 for r in migrated)
        counters = router.stats()["counters"]
        assert counters["drops"] == 1
        # migrations counts checkpoint *groups* — coalesced duplicates
        # (affine-a / affine-dup) migrate as one group, answer as two.
        assert 1 <= counters["migrations"] <= len(migrated)
        health = router.health_stats()
        assert health["endpoints"][victim]["window_failures"] >= 1
        # The victim reconnects for the next batch: the fault was one-shot.
        again = router.run_batch(requests)
        for expected, actual in zip(baseline, again):
            assert _observable(expected) == _observable(actual)
    finally:
        _shutdown(router, workers)


def test_slow_link_times_out_and_recovers():
    scheduler = make_default_scheduler(slice_steps=SLICE_STEPS)
    requests = _mixed_requests()
    ring = HashRing([0, 1])
    victim = ring.node_for(scheduler.placement_key(requests[0]))
    plan = FaultPlan([Fault(site="net.slow", times=1, delay_seconds=1.0, shard=victim)])
    router, workers = _fleet(
        worker_count=2,
        fault_plans={victim: plan},
        dispatch=DispatchPolicy(top_k=1, balance_load=False, attempt_timeout_seconds=0.25),
    )
    try:
        baseline = router.run_sequential(requests)
        served = router.run_batch(requests)
        for expected, actual in zip(baseline, served):
            assert _observable(expected) == _observable(actual)
        counters = router.stats()["counters"]
        assert counters["timeouts"] >= 1
        assert counters["migrations"] + counters["redispatches"] >= 1
    finally:
        _shutdown(router, workers)


def test_retry_budget_zero_fails_structurally_on_drop():
    plan = FaultPlan([Fault(site="net.drop", request_id="lone", at_slice=1, times=1, shard=0)])
    router, workers = _fleet(
        worker_count=1, fault_plans={0: plan}, dispatch=DispatchPolicy(top_k=1, balance_load=False)
    )
    try:
        lone = Request(
            language="RefLL",
            source=nested_refll_boundary(5),
            request_id="lone",
            retry_budget=0,
        )
        (response,) = router.run_batch([lone])
        assert not response.ok
        assert "connection lost" in response.error
    finally:
        _shutdown(router, workers)


def test_poll_workers_reports_liveness_and_refreshes_load():
    router, workers = _fleet(worker_count=2)
    try:
        assert router.poll_workers() == {0: True, 1: True}
        workers[1].stop()
        alive = router.poll_workers()
        assert alive[0] is True
        assert alive.get(1, True) is False or 1 not in alive
        assert router.stats()["counters"]["drops"] >= 1
    finally:
        _shutdown(router, workers)


# -- the store as a network service -------------------------------------------


def test_cross_endpoint_cache_warming():
    router, workers = _fleet(worker_count=2, dispatch=DispatchPolicy(top_k=1, balance_load=False))
    try:
        program = Request(language="RefLL", source=nested_refll_boundary(3), request_id="warm-0")
        first = router.run_batch([program])[0]
        home = first.shard
        assert first.published
        other = 1 - home
        pinned = Request(
            language="RefLL",
            source=nested_refll_boundary(3),
            request_id="warm-1",
            affinity=None,
        )
        # Force the duplicate onto the *other* endpoint via affinity search.
        for attempt in range(256):
            candidate = Request(
                language="RefLL",
                source=nested_refll_boundary(3),
                request_id="warm-1",
                affinity=f"spin-{attempt}",
            )
            if router.endpoint_for(candidate) == other:
                pinned = candidate
                break
        assert pinned.affinity is not None
        second = router.run_batch([pinned])[0]
        assert second.shard == other
        assert second.shared_cache_hit and not second.published
        store = router.stats()["store"]
        assert store["publishes"] >= 1
        assert store["cross_worker_hits"] >= 1
        assert router.cache_stats()["hits"] >= 1
    finally:
        _shutdown(router, workers)


def test_client_fetch_and_publish():
    router, workers = _fleet(worker_count=1)
    try:
        program = Request(language="RefLL", source=nested_refll_boundary(3), request_id="pub")
        router.run_batch([program])
        snapshot = router.stats()
        assert snapshot["store"]["entries"] >= 1
        with NetClient(*router.address) as client:
            assert client.fetch(("nope", ("missing",))) is None
            assert client.publish(("ext", ("key",)), b"payload") is True
            assert client.publish(("ext", ("key",)), b"other") is False  # first wins
            assert client.fetch(("ext", ("key",))) == b"payload"
            stats = client.stats()
            assert stats["store"]["entries"] == snapshot["store"]["entries"] + 1
    finally:
        _shutdown(router, workers)


def test_stats_snapshot_shape():
    router, workers = _fleet(worker_count=2)
    try:
        router.run_batch(_mixed_requests())
        snapshot = router.stats()
        assert set(snapshot) == {
            "endpoints",
            "ring",
            "placement",
            "store",
            "counters",
            "admission",
        }
        assert snapshot["ring"]["members"] == [0, 1]
        for info in snapshot["endpoints"].values():
            assert info["connected"] is True
            assert info["breaker"]["state"] == "closed"
        health = router.health_stats()
        assert set(health["endpoints"]) == {0, 1}
        assert "shed" in router.cache_stats()
    finally:
        _shutdown(router, workers)
