"""End-to-end tests of the §3 interoperability system (RefHL + RefLL + StackLang)."""

import pytest

from repro.core.errors import ConvertibilityError, ErrorCode
from repro.interop_refs import LANGUAGE_A, LANGUAGE_B, make_system
from repro.refhl.types import BOOL, RefType as HLRef
from repro.refll.types import INT, ArrayType
from repro.stacklang import Arr, Loc, Num


@pytest.fixture(scope="module")
def system():
    return make_system()


# -- boundaries from RefLL into RefHL ----------------------------------------


def test_refll_uses_refhl_boolean(system):
    result = system.run_source(LANGUAGE_B, "(+ 1 (boundary int true))")
    assert result.value == Num(1)  # true compiles to 0


def test_refll_uses_refhl_conditional(system):
    result = system.run_source(LANGUAGE_B, "(+ 1 (boundary int (if true false true)))")
    assert result.value == Num(2)  # false compiles to 1


def test_refll_receives_converted_pair_as_array(system):
    result = system.run_source(LANGUAGE_B, "(boundary (array int) (pair true false))")
    assert result.value == Arr((Num(0), Num(1)))


def test_refll_receives_converted_sum_as_array(system):
    result = system.run_source(LANGUAGE_B, "(boundary (array int) (inr (sum bool bool) false))")
    assert result.value == Arr((Num(1), Num(1)))


def test_refll_indexes_into_converted_sum(system):
    result = system.run_source(LANGUAGE_B, "(idx (boundary (array int) (inl (sum bool bool) true)) 1)")
    assert result.value == Num(0)


def test_refll_shares_refhl_reference_directly(system):
    # The conversion is a no-op: the RefLL code reads the very same location.
    result = system.run_source(LANGUAGE_B, "(! (boundary (ref int) (ref false)))")
    assert result.value == Num(1)


def test_refll_writes_through_shared_reference(system):
    source = "((lam (r (ref int)) ((lam (ignore int) (! r)) (set! r 7))) (boundary (ref int) (ref true)))"
    result = system.run_source(LANGUAGE_B, source)
    assert result.value == Num(7)


# -- boundaries from RefHL into RefLL ----------------------------------------


def test_refhl_uses_refll_arithmetic(system):
    result = system.run_source(LANGUAGE_A, "(if (boundary bool (+ 1 0)) true false)")
    assert result.value == Num(1)  # non-zero int means false


def test_refhl_uses_refll_zero_as_true(system):
    result = system.run_source(LANGUAGE_A, "(if (boundary bool 0) true false)")
    assert result.value == Num(0)


def test_refhl_shares_refll_reference_directly(system):
    result = system.run_source(LANGUAGE_A, "(! (boundary (ref bool) (ref 3)))")
    assert result.value == Num(3)


def test_refhl_receives_array_as_pair(system):
    result = system.run_source(LANGUAGE_A, "(snd (boundary (prod bool bool) (array 0 1)))")
    assert result.value == Num(1)


def test_refhl_array_too_short_for_pair_fails_conv(system):
    result = system.run_source(LANGUAGE_A, "(fst (boundary (prod bool bool) (array 0)))")
    assert not result.ok
    assert result.failure == ErrorCode.CONV


def test_refhl_array_to_sum_with_bad_tag_fails_conv(system):
    result = system.run_source(LANGUAGE_A, "(match (boundary (sum bool bool) (array 9 0)) (x x) (y y))")
    assert not result.ok
    assert result.failure == ErrorCode.CONV


def test_refhl_array_to_sum_with_good_tag(system):
    result = system.run_source(LANGUAGE_A, "(match (boundary (sum bool bool) (array 1 0)) (x false) (y y))")
    assert result.value == Num(0)


# -- nested boundaries ---------------------------------------------------------


def test_nested_boundaries_round_trip(system):
    source = "(+ 1 (boundary int (if (boundary bool 0) true false)))"
    result = system.run_source(LANGUAGE_B, source)
    assert result.value == Num(1)  # inner 0 is true, so outer yields true = 0


def test_function_conversion_extension(system):
    # A RefHL bool->bool function used from RefLL as int->int.
    source = "((boundary (-> int int) (lam (x bool) (if x false true))) 0)"
    result = system.run_source(LANGUAGE_B, source)
    assert result.value == Num(1)


def test_function_conversion_other_direction(system):
    source = "((boundary (-> bool bool) (lam (x int) (+ x 1))) true)"
    result = system.run_source(LANGUAGE_A, source)
    assert result.value == Num(1)


# -- typechecking of boundaries ------------------------------------------------


def test_boundary_types_are_reported(system):
    unit = system.compile_source(LANGUAGE_B, "(boundary (array int) (pair true false))")
    assert unit.type == ArrayType(INT)
    unit = system.compile_source(LANGUAGE_A, "(boundary (ref bool) (ref 0))")
    assert unit.type == HLRef(BOOL)


def test_inconvertible_boundary_is_rejected(system):
    with pytest.raises(ConvertibilityError):
        system.compile_source(LANGUAGE_B, "(boundary (ref int) (ref unit))")


def test_boundary_respects_foreign_environments(system):
    term = system.frontend(LANGUAGE_B).parse_expr("(+ x (boundary int y))")
    inferred = system.frontend(LANGUAGE_B).typecheck(term, env={"x": INT}, foreign_env={"y": BOOL})
    assert inferred == INT


def test_open_boundary_with_unbound_foreign_variable_is_rejected(system):
    from repro.core.errors import ScopeError

    term = system.frontend(LANGUAGE_B).parse_expr("(+ 1 (boundary int y))")
    with pytest.raises(ScopeError):
        system.frontend(LANGUAGE_B).typecheck(term)


# -- aliasing across the boundary ----------------------------------------------


def test_shared_reference_aliases_not_copies(system):
    """The essence of §3: after conversion both languages see the same cell."""
    unit = system.compile_source(LANGUAGE_B, "(boundary (ref int) (ref true))")
    from repro.stacklang import run

    result = run(unit.target_code)
    assert isinstance(result.value, Loc)
    # Exactly one heap cell was allocated: sharing did not copy.
    assert len(result.heap) == 1
