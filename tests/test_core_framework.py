"""Tests for the generic framework pieces in ``repro.core``."""

import pytest

from repro.core import (
    CheckReport,
    Conversion,
    ConvertibilityError,
    ConvertibilityRelation,
    ConvertibilityRule,
    Counterexample,
    NameSupply,
    TypeTag,
    World,
    check_boundary,
    is_generated_name,
    merge_disjoint,
)
from repro.core.errors import ModelError, ReproError
from repro.core.language import LanguageFrontend, TargetBackend, pipeline_cache_key
from repro.core.worlds import USED, affine_extends, fresh_location, world_flags


# -- convertibility registry ---------------------------------------------------


def _identity_conversion(type_a, type_b, name="id"):
    return Conversion(type_a, type_b, lambda term: term, lambda term: term, name)


def test_register_pair_and_query():
    relation = ConvertibilityRelation("A", "B")
    relation.register_pair("bool", "int", lambda t: ("a->b", t), lambda t: ("b->a", t))
    conversion = relation.query("bool", "int")
    assert conversion is not None
    assert conversion.apply_a_to_b("x") == ("a->b", "x")
    assert relation.convertible("bool", "int")
    assert not relation.convertible("int", "bool")


def test_require_raises_for_unknown_pair():
    relation = ConvertibilityRelation("A", "B")
    with pytest.raises(ConvertibilityError):
        relation.require("bool", "int")


def test_later_rules_take_precedence():
    relation = ConvertibilityRelation("A", "B")
    relation.register(ConvertibilityRule("first", lambda a, b, r: _identity_conversion(a, b, "first") if a == b == "t" else None))
    relation.register(ConvertibilityRule("second", lambda a, b, r: _identity_conversion(a, b, "second") if a == b == "t" else None))
    assert relation.query("t", "t").rule_name == "second"


def test_schematic_rule_with_recursive_premise():
    relation = ConvertibilityRelation("A", "B")
    relation.register_pair("base_a", "base_b", lambda t: t, lambda t: t, name="base")

    def list_rule(type_a, type_b, rel):
        if isinstance(type_a, tuple) and isinstance(type_b, tuple) and type_a[0] == type_b[0] == "list":
            if rel.convertible(type_a[1], type_b[1]):
                return _identity_conversion(type_a, type_b, "list")
        return None

    relation.register(ConvertibilityRule("list", list_rule))
    assert relation.convertible(("list", "base_a"), ("list", "base_b"))
    assert not relation.convertible(("list", "other"), ("list", "base_b"))


def test_cyclic_rules_terminate():
    relation = ConvertibilityRelation("A", "B")

    def self_referential(type_a, type_b, rel):
        # A rule whose premise is the conclusion itself must not loop forever.
        if rel.convertible(type_a, type_b):
            return _identity_conversion(type_a, type_b)
        return None

    relation.register(ConvertibilityRule("loop", self_referential))
    assert not relation.convertible("x", "y")


def test_cycle_cutoff_does_not_poison_the_memo():
    """Regression: a negative result reached only because a recursive premise
    was cut off (the conclusion was already in progress) must not be cached —
    the same pair can be derivable from a fresh top-level query."""
    relation = ConvertibilityRelation("A", "B")
    # Lowest precedence: a direct rule for P ~ Q.
    relation.register_pair("P", "Q", lambda t: t, lambda t: t, name="base")

    def p_via_rs(type_a, type_b, rel):
        # P ~ Q holds when R ~ S holds (tried before "base" because it is
        # registered later).
        if type_a == "P" and type_b == "Q" and rel.convertible("R", "S"):
            return _identity_conversion(type_a, type_b, "p-via-rs")
        return None

    def rs_via_pq(type_a, type_b, rel):
        # R ~ S holds when P ~ Q holds — mutually recursive with the above.
        if type_a == "R" and type_b == "S" and rel.convertible("P", "Q"):
            return _identity_conversion(type_a, type_b, "rs-via-pq")
        return None

    relation.register(ConvertibilityRule("p-via-rs", p_via_rs))
    relation.register(ConvertibilityRule("rs-via-pq", rs_via_pq))

    # Top-level P ~ Q: the recursive rule asks for R ~ S, whose own premise
    # P ~ Q is cut off (in progress), so R ~ S fails *along this path*; the
    # base rule then proves P ~ Q.
    assert relation.convertible("P", "Q")
    # R ~ S is derivable from a fresh query (its premise P ~ Q now succeeds);
    # before the fix the cutoff-tainted negative was memoized and this failed.
    assert relation.convertible("R", "S")


def test_cycle_cutoff_taint_is_transient():
    relation = ConvertibilityRelation("A", "B")

    def self_referential(type_a, type_b, rel):
        if rel.convertible(type_a, type_b):
            return _identity_conversion(type_a, type_b)
        return None

    relation.register(ConvertibilityRule("loop", self_referential))
    assert not relation.convertible("x", "y")
    # The genuinely-underivable pair is recomputed, not cached, and the taint
    # bookkeeping does not leak across queries.
    assert not relation.convertible("x", "y")
    assert relation._in_progress == set() and relation._tainted == set()
    # Positive results derived without cutoffs are still memoized.
    relation.register_pair("a", "b", lambda t: t, lambda t: t)
    assert relation.convertible("a", "b")
    assert ("a", "b") in relation._memo


def test_flipped_conversion_swaps_directions():
    conversion = Conversion("a", "b", lambda t: ("ab", t), lambda t: ("ba", t))
    flipped = conversion.flipped()
    assert flipped.type_a == "b"
    assert flipped.apply_a_to_b("v") == ("ba", "v")


def test_check_boundary_orients_conversion_toward_host():
    relation = ConvertibilityRelation("A", "B")
    relation.register_pair("ta", "tb", lambda t: ("to_b", t), lambda t: ("to_a", t))
    toward_a = check_boundary(relation, "A", "ta", "tb")
    assert toward_a.apply_a_to_b("v") == ("to_a", "v")
    toward_b = check_boundary(relation, "B", "tb", "ta")
    assert toward_b.apply_a_to_b("v") == ("to_b", "v")
    with pytest.raises(ConvertibilityError):
        check_boundary(relation, "A", "ta", "unknown")
    with pytest.raises(ConvertibilityError):
        check_boundary(relation, "C", "ta", "tb")


# -- worlds ---------------------------------------------------------------------


def test_world_later_spends_budget():
    world = World.initial(5)
    assert world.later(2).step_budget == 3
    with pytest.raises(ModelError):
        world.later(9)


def test_world_rejects_negative_budget():
    with pytest.raises(ModelError):
        World(-1)


def test_world_extend_heap_typing_requires_fresh_location():
    world = World.initial(5, {0: TypeTag("A", "bool")})
    with pytest.raises(ModelError):
        world.extend_heap_typing(0, TypeTag("A", "bool"))


def test_world_extension_allows_growth_and_smaller_budget():
    base = World.initial(5, {0: TypeTag("A", "bool")})
    future = base.later().extend_heap_typing(1, TypeTag("B", "int"))
    assert future.extends(base)
    assert not base.extends(future)


def test_affine_extension_marks_used_monotonically():
    base = World.initial(5).with_affine_store({7: frozenset({"f1"})})
    used = base.later().with_affine_store({7: USED})
    assert affine_extends(used, base)
    assert not affine_extends(base, used)


def test_affine_extension_rejects_lost_flags_entry():
    base = World.initial(5).with_affine_store({7: frozenset()})
    missing = base.later().with_affine_store({})
    assert not affine_extends(missing, base)


def test_affine_extension_respects_excluded_flags():
    base = World.initial(5).with_affine_store({7: frozenset({"f1"})})
    future = base.later()
    assert not affine_extends(future, base, excluded_flags=frozenset({"f1"}))


def test_world_flags_collects_phantom_flags():
    world = World.initial(3).with_affine_store({1: frozenset({"a"}), 2: USED, 3: frozenset({"b"})})
    assert world_flags(world) == frozenset({"a", "b"})


def test_merge_disjoint_and_fresh_location():
    merged = merge_disjoint({0: "x"}, {1: "y"})
    assert merged == {0: "x", 1: "y"}
    with pytest.raises(ModelError):
        merge_disjoint({0: "x"}, {0: "y"})
    assert fresh_location({0: "x"}, {5: "y"}) == 6
    assert fresh_location() == 0


# -- backend registry and pipeline cache ------------------------------------------


def _make_frontend(calls):
    def parse(source):
        calls.append(("parse", source))
        return ("term", source)

    def typecheck(term, **kwargs):
        calls.append(("typecheck", term))
        return "ty"

    def compile_term(term):
        calls.append(("compile", term))
        return ("code", term)

    return LanguageFrontend(
        name="Toy", parse_expr=parse, parse_type=parse, typecheck=typecheck, compile=compile_term
    )


def test_pipeline_is_memoized_per_source():
    calls = []
    frontend = _make_frontend(calls)
    first = frontend.pipeline("(x)")
    again = frontend.pipeline("(x)")
    assert first is again
    assert len(calls) == 3  # parse/typecheck/compile ran exactly once
    frontend.pipeline("(y)")
    assert len(calls) == 6
    stats = frontend.cache_stats()
    assert (stats["entries"], stats["hits"], stats["misses"]) == (2, 1, 2)


def test_pipeline_caches_hashable_typecheck_kwargs():
    # Environments freeze to a sorted-tuple surrogate, so kwarg-carrying
    # calls hit the cache when (and only when) the environments are equal.
    calls = []
    frontend = _make_frontend(calls)
    first = frontend.pipeline("(x)", env={"a": "int"})
    again = frontend.pipeline("(x)", env={"a": "int"})
    assert first is again
    assert len(calls) == 3
    frontend.pipeline("(x)", env={"a": "bool"})  # different context recompiles
    assert len(calls) == 6
    frontend.pipeline("(x)")  # no-kwargs call is a distinct key
    stats = frontend.cache_stats()
    assert (stats["entries"], stats["hits"], stats["misses"]) == (3, 1, 3)


def test_pipeline_cache_bypassed_for_unhashable_kwargs():
    # Arguments with no hashable form never hit (or populate) the cache — a
    # wrong hit would return code compiled against a different context.
    calls = []
    frontend = _make_frontend(calls)

    class Opaque:
        __hash__ = None

    frontend.pipeline("(x)", env=Opaque())
    frontend.pipeline("(x)", env=Opaque())
    stats = frontend.cache_stats()
    assert (stats["entries"], stats["hits"], stats["misses"]) == (0, 0, 0)
    assert len(calls) == 6  # both calls ran the full pipeline


def test_pipeline_cache_is_lru_bounded():
    calls = []
    frontend = _make_frontend(calls)
    frontend.cache_capacity = 2
    frontend.pipeline("(a)")
    frontend.pipeline("(b)")
    frontend.pipeline("(a)")  # refresh (a): (b) is now least recent
    frontend.pipeline("(c)")  # evicts (b)
    stats = frontend.cache_stats()
    assert stats["entries"] == 2
    assert stats["evictions"] == 1
    frontend.pipeline("(a)")  # still cached
    assert frontend.cache_stats()["hits"] == 2
    frontend.pipeline("(b)")  # was evicted: recompiles
    assert frontend.cache_stats()["misses"] == 4


def test_pipeline_cache_can_be_disabled_and_cleared():
    calls = []
    frontend = _make_frontend(calls)
    frontend.cache_enabled = False
    assert frontend.pipeline("(x)") is not frontend.pipeline("(x)")
    frontend.cache_enabled = True
    frontend.pipeline("(x)")
    frontend.clear_cache()
    frontend.pipeline("(x)")
    assert frontend.cache_stats()["misses"] == 1  # cleared stats, recompiled


# -- cross-process cache export/import hooks ----------------------------------


def test_pipeline_cache_key_matches_the_frontend_key():
    frontend = _make_frontend([])
    assert frontend.cache_key("(x)") == pipeline_cache_key("Toy", "(x)")
    assert frontend.cache_key("(x)", {"env": {"a": "int"}}) == pipeline_cache_key(
        "Toy", "(x)", {"env": {"a": "int"}}
    )

    class Opaque:
        __hash__ = None

    # Unkeyable kwargs yield None on both sides: such submissions never share.
    assert frontend.cache_key("(x)", {"env": Opaque()}) is None
    assert pipeline_cache_key("Toy", "(x)", {"env": Opaque()}) is None


def test_export_and_import_cache_entries_round_trip():
    calls = []
    producer = _make_frontend(calls)
    consumer = _make_frontend(calls)
    unit = producer.pipeline("(x)")
    key = producer.cache_key("(x)")
    assert producer.export_cache_entry(key) is unit
    assert producer.export_cache_entry(("Toy", "(missing)", ())) is None

    # Importing counts as an import (not a hit or miss) and makes the
    # consumer's next pipeline call a hit without running parse/typecheck.
    assert consumer.import_cache_entry(key, unit)
    calls_before = len(calls)
    assert consumer.pipeline("(x)") is unit
    assert len(calls) == calls_before
    stats = consumer.cache_stats()
    assert (stats["imports"], stats["hits"], stats["misses"]) == (1, 1, 0)

    # Re-importing an already-resident key is a no-op (the resident unit
    # keeps its identity, which the machine-level compiled memos key on).
    assert not consumer.import_cache_entry(key, producer.pipeline("(x)"))
    assert consumer.cache_stats()["imports"] == 1


def test_imports_respect_capacity_and_eviction_accounting():
    frontend = _make_frontend([])
    frontend.cache_capacity = 2
    donor = _make_frontend([])
    for source in ("(a)", "(b)", "(c)"):
        unit = donor.pipeline(source)
        assert frontend.import_cache_entry(donor.cache_key(source), unit)
    stats = frontend.cache_stats()
    assert (stats["entries"], stats["imports"], stats["evictions"]) == (2, 3, 1)
    # The disabled cache refuses imports outright.
    frontend.cache_enabled = False
    assert not frontend.import_cache_entry(donor.cache_key("(d)"), donor.pipeline("(d)"))


def test_target_backend_registry_dispatch():
    backend = TargetBackend(
        name="T",
        backends={"substitution": lambda code, **kw: ("slow", code), "cek": lambda code, **kw: ("fast", code)},
        default_backend="cek",
    )
    assert backend.backend_names() == ["substitution", "cek"]
    assert backend.run_with("p") == ("fast", "p")
    assert backend.run_with("p", backend="substitution") == ("slow", "p")
    assert backend.run("p") == ("fast", "p")  # legacy entry point follows the default
    backend.select_backend("substitution")
    assert backend.run("p") == ("slow", "p")
    with pytest.raises(ReproError):
        backend.run_with("p", backend="warp-drive")


def test_target_backend_legacy_single_runner():
    backend = TargetBackend(name="T", run=lambda code, **kw: ("only", code))
    assert backend.backend_names() == ["substitution"]
    assert backend.default_backend == "substitution"
    assert backend.run_with("p") == ("only", "p")


def test_target_backend_register_backend():
    backend = TargetBackend(name="T", run=lambda code, **kw: ("old", code))
    backend.register_backend("cek", lambda code, **kw: ("new", code), default=True)
    assert backend.run("p") == ("new", "p")
    assert backend.run_with("p", backend="substitution") == ("old", "p")


# -- misc -----------------------------------------------------------------------


def test_name_supply_is_fresh_and_marked():
    supply = NameSupply()
    first, second = supply.fresh("x"), supply.fresh("x")
    assert first != second
    assert is_generated_name(first)
    assert not is_generated_name("user_name")


def test_check_report_accumulates():
    report = CheckReport("demo")
    report.record_success(3)
    assert report.ok
    report.record_failure(Counterexample("bad", source_type="t"))
    assert not report.ok
    assert "FAILED" in report.summary()
    assert "bad" in str(report)
