"""The failure-policy layer (:mod:`repro.serve.reliability` & friends).

What is pinned here:

* **deadlines** — the driver stops an expired execution at a slice boundary
  with a structured :class:`DeadlineExceeded` (never an exception), the
  scheduler surfaces it as ``response.deadline_exceeded`` carrying a
  *resumable* checkpoint whenever the backend snapshots, and resuming that
  checkpoint completes with outcomes identical to an undisturbed run —
  with cumulative step/slice accounting still inside the bounded-latency
  invariant;
* **retry/backoff** — the schedule is exponential, capped, and
  deterministic under a seeded RNG; crashed requests with budget are
  redispatched (or migrated) with ``response.attempts`` counting every
  dispatch, and budgets are never exceeded however many workers die;
* **quarantine** — per-shard circuit breakers walk
  closed → open → half_open → closed deterministically under fake time and
  injected crashes, rerouting traffic off the quarantined shard meanwhile;
* **load shedding** — admission limits shed the deterministic *tail* of an
  oversized batch with structured ``rejected_overload`` responses, and
  everything admitted is served normally;
* **store hardening & GC** — corrupt checkpoint files surface as
  :class:`CheckpointCorrupt` (a ``ValueError``) naming the path, never
  break scanning the healthy rest, and age/size GC evicts oldest-first.

Worker-pool tests use module-level factories/plans (the spawn start method
pickles them by reference); breakers live in the parent, so their fake
clocks can stay local.
"""

import os
import pickle
import random

import pytest

from repro.serve import (
    AdmissionController,
    BreakerPolicy,
    Checkpoint,
    CheckpointCorrupt,
    CheckpointStore,
    CircuitBreaker,
    DeadlineExceeded,
    Request,
    RetryPolicy,
    StepSlicedDriver,
    WorkerPool,
    make_default_scheduler,
)
from repro.serve.faults import Fault, FaultPlan
from repro.util.workloads import nested_refll_boundary


class FakeClock:
    """A deterministic clock: advances only when told to (or per call)."""

    def __init__(self, tick: float = 0.0):
        self.now = 0.0
        self.tick = tick

    def __call__(self) -> float:
        self.now += self.tick
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _affinity_for_shard(pool, shard, language="RefLL", source="x"):
    for attempt in range(64):
        key = f"pin-{shard}-{attempt}"
        if pool.shard_of(Request(language=language, source=source, affinity=key)) == shard:
            return key
    raise AssertionError(f"no affinity key found for shard {shard}")


# -- retry policy -------------------------------------------------------------


def test_retry_backoff_is_exponential_capped_and_seeded():
    policy = RetryPolicy(base_delay_seconds=0.1, multiplier=2.0, max_delay_seconds=0.5, jitter=0.0)
    assert [policy.delay_seconds(n) for n in (1, 2, 3, 4, 5)] == [0.1, 0.2, 0.4, 0.5, 0.5]
    jittered = RetryPolicy(base_delay_seconds=0.1, jitter=0.25)
    first = [jittered.delay_seconds(n, random.Random(7)) for n in (1, 2, 3)]
    second = [jittered.delay_seconds(n, random.Random(7)) for n in (1, 2, 3)]
    assert first == second  # same seed, same schedule -- chaos runs reproduce
    for attempt, delay in enumerate(first, start=1):
        center = jittered.delay_seconds(attempt)
        assert center * 0.75 <= delay <= center * 1.25
    with pytest.raises(ValueError):
        policy.delay_seconds(0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)


# -- circuit breaker ----------------------------------------------------------


def test_breaker_quarantine_round_trip_is_deterministic():
    clock = FakeClock()
    breaker = CircuitBreaker(
        BreakerPolicy(failure_threshold=2, window_seconds=30.0, cooldown_seconds=5.0),
        clock=clock,
    )
    assert breaker.state() == "closed" and breaker.allow()
    breaker.record_failure()
    assert breaker.state() == "closed"  # one failure is not a loop
    breaker.record_failure()
    assert breaker.state() == "open" and not breaker.allow()
    clock.advance(4.9)
    assert not breaker.allow()  # cooldown not elapsed
    clock.advance(0.2)
    assert breaker.state() == "half_open"
    assert breaker.allow()  # the single probe
    assert not breaker.allow()  # trials are bounded until the probe reports
    breaker.record_success()
    assert breaker.state() == "closed" and breaker.allow()
    assert breaker.stats()["transitions"] == ["closed", "open", "half_open", "closed"]


def test_breaker_probe_failure_reopens_with_fresh_cooldown():
    clock = FakeClock()
    breaker = CircuitBreaker(
        BreakerPolicy(failure_threshold=1, cooldown_seconds=5.0), clock=clock
    )
    breaker.record_failure()
    clock.advance(5.1)
    assert breaker.allow()  # half-open probe
    breaker.record_failure()
    assert breaker.state() == "open" and not breaker.allow()
    clock.advance(5.1)
    assert breaker.state() == "half_open"
    breaker.record_success()
    assert breaker.state() == "closed"
    assert breaker.stats()["transitions"] == [
        "closed", "open", "half_open", "open", "half_open", "closed",
    ]


def test_breaker_window_forgets_old_failures():
    clock = FakeClock()
    breaker = CircuitBreaker(
        BreakerPolicy(failure_threshold=2, window_seconds=10.0), clock=clock
    )
    breaker.record_failure()
    clock.advance(11.0)
    breaker.record_failure()  # the first failure has aged out of the window
    assert breaker.state() == "closed"
    assert breaker.stats()["window_failures"] == 1
    assert breaker.stats()["failures"] == 2  # lifetime count keeps both


# -- admission / load shedding ------------------------------------------------


def test_admission_controller_limits():
    admission = AdmissionController(max_batch=3, max_inflight=2)
    assert admission.batch_cutoff(5) == 3
    assert admission.batch_cutoff(2) == 2
    assert admission.admit_to_shard(0) and admission.admit_to_shard(1)
    assert not admission.admit_to_shard(2)
    assert AdmissionController().batch_cutoff(1000) == 1000
    with pytest.raises(ValueError):
        AdmissionController(max_batch=0)


def test_scheduler_sheds_deterministic_tail_past_max_inflight():
    source = nested_refll_boundary(3)
    requests = [
        Request(language="RefLL", source=source, request_id=f"r{i}") for i in range(4)
    ]
    scheduler = make_default_scheduler(slice_steps=64, max_inflight=2)
    responses = scheduler.serve(requests)
    for response in responses[:2]:
        assert response.error is None and response.result.ok
        assert not response.rejected_overload
    for response in responses[2:]:
        assert response.rejected_overload and response.policy_stopped
        assert response.result is None and response.error is None  # structured, not a failure
        assert "rejected" in str(response)
    baseline = make_default_scheduler(slice_steps=64).serve_sequential(requests[:2])
    for shed_run, undisturbed in zip(responses[:2], baseline):
        assert str(shed_run.result) == str(undisturbed.result)
        assert shed_run.result.steps == undisturbed.result.steps


# -- deadlines ----------------------------------------------------------------


class _NeverDone:
    """A resumable execution that always has more work (for driver tests)."""

    def step_n(self, limit):
        return None


def test_driver_returns_structured_deadline_exceeded_at_the_boundary():
    clock = FakeClock(tick=1.0)  # one second per clock read
    driver = StepSlicedDriver(slice_steps=4, clock=clock)
    driven = driver.run_sequential([_NeverDone()], deadlines=[2.0])[0]
    assert isinstance(driven.result, DeadlineExceeded)
    assert driven.result.elapsed_seconds >= driven.result.deadline_seconds
    assert driven.slices >= 1  # stopped at a boundary, not mid-slice
    with pytest.raises(ValueError):
        driver.run_sequential([_NeverDone()], deadlines=[])  # length mismatch


def test_deadline_exceeded_response_carries_a_resumable_checkpoint():
    source = nested_refll_boundary(5)
    clock = FakeClock(tick=0.5)
    scheduler = make_default_scheduler(
        slice_steps=8, driver=StepSlicedDriver(8, clock=clock)
    )
    request = Request(language="RefLL", source=source, deadline_seconds=1.0, request_id="slow")
    response = scheduler.serve([request])[0]
    assert response.deadline_exceeded and response.policy_stopped
    assert response.error is None and response.result is None
    # Every built-in backend snapshots, so the invariant's "when the backend
    # supports snapshots" clause applies: the checkpoint must be there.
    assert response.checkpoint is not None
    assert response.checkpoint.slices == response.slices
    assert "deadline" in str(response) and "resumable" in str(response)

    # Granting more time = resuming the checkpoint, not re-running the work:
    # a fresh attempt (real clock, full per-attempt budget) completes with
    # outcomes identical to an undisturbed run, and the *cumulative*
    # accounting still satisfies steps <= slices * slice_steps.
    fresh = make_default_scheduler(slice_steps=8)
    resumed = fresh.resume([response.checkpoint])[0]
    assert resumed.error is None and resumed.result.ok and resumed.resumed
    baseline = make_default_scheduler(slice_steps=8).serve_sequential(
        [Request(language="RefLL", source=source)]
    )[0]
    assert str(resumed.result) == str(baseline.result)
    assert resumed.result.steps == baseline.result.steps
    total_slices = response.checkpoint.slices + resumed.slices
    assert resumed.result.steps <= total_slices * 8


def test_deadline_applies_per_attempt_through_preempting_and_resume():
    source = nested_refll_boundary(5)
    clock = FakeClock(tick=0.5)
    scheduler = make_default_scheduler(
        slice_steps=8, driver=StepSlicedDriver(8, clock=clock)
    )
    request = Request(language="RefLL", source=source, deadline_seconds=1.0)
    response = scheduler.serve_preempting([request], checkpoint_every=1)[0]
    assert response.deadline_exceeded
    assert not response.preempted  # policy expiry, not a preemption ceiling
    assert response.checkpoint is not None
    # The same fake clock expires the resumed attempt again -- each attempt
    # gets the full budget, and each expiry yields a *fresh* checkpoint
    # strictly further along.
    again = scheduler.resume([response.checkpoint])[0]
    assert again.deadline_exceeded and again.checkpoint is not None
    assert again.error is None


# -- pool: retry / redispatch -------------------------------------------------

_CRASH_FIRST_SLICE = FaultPlan(
    faults=(Fault(site="worker.crash", shard=0, at_slice=1, times=1),)
)


def test_pool_redispatches_crashed_requests_within_budget():
    # No checkpoint streaming: recovery must go through from-scratch
    # redispatch, and the default budget of 1 covers exactly one recovery.
    with WorkerPool(
        workers=2,
        slice_steps=16,
        checkpoint_every=None,
        fault_plan=_CRASH_FIRST_SLICE,
        sleeper=lambda _seconds: None,
    ) as pool:
        key = _affinity_for_shard(pool, 0)
        request = Request(
            language="RefLL", source=nested_refll_boundary(4), affinity=key, request_id="victim"
        )
        response = pool.run_batch([request])[0]
        assert response.error is None and response.result.ok
        assert response.attempts == 2  # the crashed dispatch plus the retry
        assert not response.resumed and response.migrated_from is None
        assert response.shard == 1  # recovered on the surviving worker
        baseline = pool.run_sequential([request])[0]
        assert str(response.result) == str(baseline.result)
        assert response.result.steps == baseline.result.steps
        stats = pool.cache_stats()
        assert stats["worker_crashes"] == 1
        assert stats["redispatches"] == 1 and stats["retries"] == 1
        assert stats["migrations"] == 0


_CRASH_SECOND_SLICE = FaultPlan(
    faults=(Fault(site="worker.crash", shard=0, at_slice=2, times=1),)
)


def test_pool_migration_counts_attempts_and_cumulative_slices():
    # With streaming on, the same crash is recovered by *migration*: the
    # parent holds the slice-1 checkpoint when the worker dies at slice 2.
    with WorkerPool(
        workers=2,
        slice_steps=16,
        fault_plan=_CRASH_SECOND_SLICE,
        sleeper=lambda _seconds: None,
    ) as pool:
        key = _affinity_for_shard(pool, 0)
        request = Request(
            language="RefLL", source=nested_refll_boundary(5), affinity=key, request_id="victim"
        )
        response = pool.run_batch([request])[0]
        assert response.error is None and response.result.ok
        assert response.resumed and response.migrated_from == 0
        assert response.attempts == 2
        baseline = pool.run_sequential([request])[0]
        assert str(response.result) == str(baseline.result)
        assert response.result.steps == baseline.result.steps
        # Cumulative accounting: response.slices folds in the checkpoint's
        # pre-crash slices, so the bounded-latency invariant holds end to end.
        assert response.slices >= 2
        assert response.result.steps <= response.slices * 16
        assert pool.cache_stats()["migrations"] == 1


_CRASH_AND_SUPPRESS = FaultPlan(
    faults=(
        Fault(site="checkpoint.pickle", shard=0, times=None),
        Fault(site="worker.crash", shard=0, at_slice=2, times=1),
    )
)


def test_pool_falls_back_to_redispatch_when_checkpoints_are_suppressed():
    # The checkpoint.pickle fault eats every streamed checkpoint on shard 0,
    # so the crash leaves nothing to migrate -- recovery must come from the
    # from-scratch path, and outcomes must still match the baseline.
    with WorkerPool(
        workers=2,
        slice_steps=16,
        fault_plan=_CRASH_AND_SUPPRESS,
        sleeper=lambda _seconds: None,
    ) as pool:
        key = _affinity_for_shard(pool, 0)
        request = Request(
            language="RefLL", source=nested_refll_boundary(5), affinity=key, request_id="victim"
        )
        response = pool.run_batch([request])[0]
        assert response.error is None and response.result.ok
        assert not response.resumed and response.attempts == 2
        baseline = pool.run_sequential([request])[0]
        assert str(response.result) == str(baseline.result)
        stats = pool.cache_stats()
        assert stats["migrations"] == 0 and stats["redispatches"] == 1


_ALWAYS_CRASH_SHARD_0 = FaultPlan(
    faults=(Fault(site="worker.crash", shard=0, at_slice=1, times=None),)
)


def test_pool_exhausted_retry_budget_keeps_structured_crash_error():
    # The shard-0 fault fires in every incarnation (times=None), so every
    # attempt that lands there dies; but _recover places retries on the
    # *surviving* shard, where the fault does not match -- so to pin the
    # budget-exhaustion path we aim the crash at both shards.
    with WorkerPool(
        workers=2,
        slice_steps=16,
        checkpoint_every=None,
        fault_plan=FaultPlan(faults=(Fault(site="worker.crash", at_slice=1, times=None),)),
        sleeper=lambda _seconds: None,
    ) as pool:
        key = _affinity_for_shard(pool, 0)
        request = Request(
            language="RefLL",
            source=nested_refll_boundary(4),
            affinity=key,
            request_id="doomed",
            retry_budget=2,
        )
        response = pool.run_batch([request])[0]
        assert response.error is not None and "crashed" in response.error
        assert response.result is None
        stats = pool.cache_stats()
        # Initial dispatch + 2 budgeted retries, every one a crash.
        assert stats["worker_crashes"] == 3
        assert stats["retries"] == 2


# -- pool: quarantine ---------------------------------------------------------

_CRASH_BOOM_REQUESTS = FaultPlan(
    faults=(
        Fault(site="worker.crash", shard=0, request_id="boom1", at_slice=1),
        Fault(site="worker.crash", shard=0, request_id="boom2", at_slice=1),
    )
)


def test_pool_quarantines_crash_looping_shard_and_probe_respawns():
    clock = FakeClock()
    with WorkerPool(
        workers=2,
        slice_steps=16,
        breaker_policy=BreakerPolicy(failure_threshold=2, cooldown_seconds=60.0),
        fault_plan=_CRASH_BOOM_REQUESTS,
        clock=clock,
        sleeper=lambda _seconds: None,
    ) as pool:
        key = _affinity_for_shard(pool, 0)
        source = nested_refll_boundary(4)

        def pinned(request_id, **kwargs):
            return Request(
                language="RefLL", source=source, affinity=key,
                request_id=request_id, **kwargs,
            )

        # Two crash-looping batches open shard 0's breaker.
        first = pool.run_batch([pinned("boom1", retry_budget=0)])[0]
        second = pool.run_batch([pinned("boom2", retry_budget=0)])[0]
        assert "crashed" in first.error and "crashed" in second.error
        health = pool.health_stats()
        assert health["shards"][0]["state"] == "open"

        # Quarantined: shard-0 traffic reroutes to the healthy worker, with
        # the detour recorded on the response.
        rerouted = pool.run_batch([pinned("detour")])[0]
        assert rerouted.error is None and rerouted.result.ok
        assert rerouted.shard == 1 and rerouted.rerouted_from == 0
        assert pool.health_stats()["reroutes"] == 1

        # Cooldown elapses (fake time): the next dispatch is the half-open
        # probe -- it respawns the worker, succeeds, and closes the breaker.
        clock.advance(61.0)
        probe = pool.run_batch([pinned("probe")])[0]
        assert probe.error is None and probe.result.ok
        assert probe.shard == 0 and probe.rerouted_from is None
        shard0 = pool.health_stats()["shards"][0]
        assert shard0["state"] == "closed"
        assert shard0["transitions"] == ["closed", "open", "half_open", "closed"]


def test_pool_sheds_batch_tail_and_serves_the_admitted_head():
    source = nested_refll_boundary(3)
    requests = [
        Request(language="RefLL", source=source, request_id=f"r{i}") for i in range(4)
    ]
    with WorkerPool(workers=2, slice_steps=64, max_batch=2) as pool:
        responses = pool.run_batch(requests)
        for response in responses[:2]:
            assert response.error is None and response.result.ok
        for response in responses[2:]:
            assert response.rejected_overload and response.policy_stopped
            assert response.result is None and response.error is None
        baseline = pool.run_sequential(requests[:2])
        for served, undisturbed in zip(responses[:2], baseline):
            assert str(served.result) == str(undisturbed.result)
        assert pool.cache_stats()["shed"] == 2
        assert pool.health_stats()["admission"]["shed"] == 2


_SLOW_SHARD_0 = FaultPlan(
    faults=(Fault(site="worker.slow", shard=0, request_id="lag", at_slice=1, delay_seconds=0.25),)
)


def test_pool_deadline_fires_under_an_injected_slow_worker():
    with WorkerPool(workers=2, slice_steps=16, fault_plan=_SLOW_SHARD_0) as pool:
        key = _affinity_for_shard(pool, 0)
        lagging = Request(
            language="RefLL",
            source=nested_refll_boundary(5),
            affinity=key,
            request_id="lag",
            deadline_seconds=0.05,
        )
        response = pool.run_batch([lagging])[0]
        assert response.deadline_exceeded and response.policy_stopped
        assert response.error is None and response.result is None
        # The checkpoint crossed the process boundary with the response: the
        # caller can grant more time without repaying the work.
        assert response.checkpoint is not None
        resumed = make_default_scheduler(slice_steps=16).resume([
            # A fresh attempt without the injected stall or deadline.
            response.checkpoint
        ])
        # The stored request still carries its deadline; the resumed attempt
        # gets the full budget afresh and, without the stall, finishes.
        assert resumed[0].error is None


# -- checkpoint store: hardening & GC -----------------------------------------


def _dummy_checkpoint(tag="one"):
    # gc/scan care about files, not runnability: a minimal well-formed
    # Checkpoint is enough (restoring it is the scheduler tests' business).
    return Checkpoint(
        request=Request(language="RefLL", source="1", request_id=tag),
        system="refs",
        backend="cek",
        snapshot={"version": 1, "tag": tag},
    )


def test_store_load_raises_structured_corrupt_error(tmp_path):
    store = CheckpointStore(str(tmp_path))
    junk = os.path.join(str(tmp_path), "junk.ckpt")
    with open(junk, "wb") as handle:
        handle.write(b"not a pickle at all")
    with pytest.raises(CheckpointCorrupt) as caught:
        store.load(junk)
    assert caught.value.path == junk
    assert junk in str(caught.value)
    assert isinstance(caught.value, ValueError)  # pre-hardening callers

    wrong_type = os.path.join(str(tmp_path), "wrong.ckpt")
    with open(wrong_type, "wb") as handle:
        handle.write(pickle.dumps({"not": "a checkpoint"}))
    with pytest.raises(CheckpointCorrupt, match="not a Checkpoint"):
        store.load(wrong_type)

    stale = _dummy_checkpoint()
    stale.version = 99
    path = store.save(stale)
    with pytest.raises(CheckpointCorrupt, match="version"):
        store.load(path)


def test_store_scan_isolates_corrupt_files_from_healthy_ones(tmp_path):
    store = CheckpointStore(str(tmp_path))
    good = store.save(_dummy_checkpoint("good"))
    junk = os.path.join(str(tmp_path), "bad.ckpt")
    with open(junk, "wb") as handle:
        handle.write(b"\x80garbage")
    loadable, corrupt = store.scan()
    assert [path for path, _checkpoint in loadable] == [good]
    assert [path for path, _error in corrupt] == [junk]
    assert isinstance(corrupt[0][1], CheckpointCorrupt)
    assert store.load_all() and len(store.load_all()) == 1  # skips the junk
    with pytest.raises(CheckpointCorrupt):
        store.load_all(strict=True)


def test_store_gc_evicts_by_age_then_bounds_by_size(tmp_path):
    store = CheckpointStore(str(tmp_path))
    old = store.save(_dummy_checkpoint("old"))
    fresh = store.save(_dummy_checkpoint("fresh"))
    now = 1_000_000.0
    os.utime(old, (now - 100.0, now - 100.0))
    os.utime(fresh, (now - 1.0, now - 1.0))
    removed = store.gc(max_age_seconds=50.0, now=now)
    assert removed == [old]
    assert store.paths() == [fresh]

    # Size bound: oldest evicted first until under budget.
    third = store.save(_dummy_checkpoint("third"))
    os.utime(fresh, (now - 10.0, now - 10.0))
    os.utime(third, (now - 5.0, now - 5.0))
    size_third = os.stat(third).st_size
    removed = store.gc(max_total_bytes=size_third, now=now)
    assert removed == [fresh]
    assert store.paths() == [third]

    # No limits configured anywhere: gc is a no-op.
    assert CheckpointStore(str(tmp_path)).gc() == []


def test_resume_stored_completes_consumes_and_gcs(tmp_path):
    source = nested_refll_boundary(5)
    scheduler = make_default_scheduler(slice_steps=16)
    paused = scheduler.serve_preempting(
        [Request(language="RefLL", source=source, request_id="durable")], max_slices=1
    )[0]
    assert paused.preempted and paused.checkpoint is not None
    store = CheckpointStore(str(tmp_path), max_age_seconds=3600.0)
    saved = store.save(paused.checkpoint)
    junk = os.path.join(str(tmp_path), "torn.ckpt")
    with open(junk, "wb") as handle:
        handle.write(b"half a pickl")
    ancient = store.save(_dummy_checkpoint("ancient"))
    os.utime(ancient, (1.0, 1.0))  # far past the age limit

    responses = make_default_scheduler(slice_steps=16).resume_stored(store)
    by_error = [r for r in responses if r.error is not None]
    finished = [r for r in responses if r.error is None and r.result is not None]
    assert len(finished) == 1 and finished[0].resumed
    baseline = scheduler.serve_sequential([Request(language="RefLL", source=source)])[0]
    assert str(finished[0].result) == str(baseline.result)
    assert finished[0].result.steps == baseline.result.steps
    # The corrupt file surfaced structurally (naming its path), not fatally.
    assert any(junk in response.error for response in by_error)
    # Consumed: the finished run's file is gone (never resumed twice); GC'd:
    # the ancient checkpoint aged out under the store's configured limit.
    remaining = store.paths()
    assert saved not in remaining
    assert ancient not in remaining
