"""Tests for the L3 parser, linear typechecker, and compiler."""

import pytest

from repro.core.errors import LinearityError, ScopeError, TypeCheckError
from repro.l3 import (
    check_with_usage,
    compile_expr,
    is_duplicable,
    parse_expr,
    parse_type,
    reference_package,
    typecheck,
    unused_linear_variables,
)
from repro.l3 import types as ty
from repro.lcvm import CellKind, Int, Pair, Status, Unit, run


def _check(source: str, **kwargs):
    return typecheck(parse_expr(source), **kwargs)


def _run(source: str):
    return run(compile_expr(parse_expr(source)))


# -- types ------------------------------------------------------------------------


def test_parse_types_and_refpkg_sugar():
    assert parse_type("(cap z bool)") == ty.CapType("z", ty.BOOL)
    assert parse_type("(refpkg bool)") == reference_package(ty.BOOL)
    assert parse_type("(exists z (tensor (cap z bool) (! (ptr z))))") == reference_package(ty.BOOL)


def test_duplicable_subset():
    assert is_duplicable(ty.BOOL)
    assert is_duplicable(ty.PtrType("z"))
    assert is_duplicable(ty.BangType(ty.BOOL))
    assert not is_duplicable(ty.CapType("z", ty.BOOL))
    assert not is_duplicable(ty.LolliType(ty.BOOL, ty.BOOL))


def test_location_substitution():
    packaged = parse_type("(exists z (cap z bool))")
    opened = ty.substitute_location(packaged.body, "z", "w")
    assert opened == ty.CapType("w", ty.BOOL)


# -- typechecker -------------------------------------------------------------------


def test_new_produces_reference_package():
    assert _check("(new true)") == reference_package(ty.BOOL)


def test_free_consumes_reference_package():
    assert _check("(free (new true))") == ty.BOOL


def test_linear_variable_cannot_be_duplicated():
    with pytest.raises(LinearityError):
        _check("((lam (c (cap z bool)) (tensor c c)) true)", locations=frozenset({"z"}))


def test_duplicable_values_can_be_duplicated_explicitly():
    assert _check("(dupl true)") == ty.TensorType(ty.BOOL, ty.BOOL)
    with pytest.raises(LinearityError):
        _check("((lam (c (cap z bool)) (dupl c)) true)", locations=frozenset({"z"}))


def test_swap_types_strong_update():
    source = (
        "(unpack (z pkg) (new true) (let-tensor (c p) pkg (let! (pp p) "
        "(let-tensor (c2 old) (swap c pp false) (let-unit (drop old) "
        "(free (pack z (tensor c2 (bang pp)) (refpkg bool))))))))"
    )
    assert _check(source) == ty.BOOL


def test_unpack_escape_check():
    with pytest.raises(TypeCheckError):
        _check("(unpack (z pkg) (new true) pkg)")


def test_bang_requires_no_linear_capture():
    with pytest.raises(LinearityError):
        _check("((lam (c (cap z bool)) (bang c)) true)", locations=frozenset({"z"}))


def test_let_bang_gives_unrestricted_variable():
    assert _check("(let! (x (bang true)) (tensor x x))") == ty.TensorType(ty.BOOL, ty.BOOL)


def test_location_abstraction_and_application():
    source = "(loclam z (lam (p (ptr z)) p))"
    inferred = _check(source)
    assert inferred == ty.ForallLocType("z", ty.LolliType(ty.PtrType("z"), ty.PtrType("z")))


def test_location_application_requires_scope():
    with pytest.raises(ScopeError):
        _check("(locapp (loclam z (lam (p (ptr z)) p)) w)")


def test_unused_linear_variables_reports_leaks():
    term = parse_expr("true")
    leaks = unused_linear_variables(term, linear={"c": ty.CapType("z", ty.BOOL)}, locations=frozenset({"z"}))
    assert leaks == frozenset({"c"})


def test_if_condition_must_be_bool():
    with pytest.raises(TypeCheckError):
        _check("(if (new true) true false)")


# -- compiler ---------------------------------------------------------------------


def test_compile_new_free_roundtrip():
    result = _run("(free (new true))")
    assert result.value == Int(0)
    assert len(result.heap) == 0  # the manual cell was freed


def test_compile_new_allocates_manual_cell():
    result = _run("(new true)")
    assert result.status is Status.VALUE
    assert isinstance(result.value, Pair)
    assert result.value.first == Unit()
    kinds = [cell.kind for cell in result.heap.cells.values()]
    assert kinds == [CellKind.MANUAL]


def test_compile_swap_performs_strong_update():
    source = (
        "(unpack (z pkg) (new true) (let-tensor (c p) pkg (let! (pp p) "
        "(let-tensor (c2 old) (swap c pp false) (let-unit (drop old) "
        "(free (pack z (tensor c2 (bang pp)) (refpkg bool))))))))"
    )
    result = _run(source)
    assert result.value == Int(1)  # the swapped-in `false`
    assert len(result.heap) == 0


def test_compile_capabilities_erase_to_unit():
    result = _run("(new true)")
    assert result.value.first == Unit()


def test_compile_dupl_and_drop():
    assert _run("(dupl true)").value == Pair(Int(0), Int(0))
    assert _run("(drop false)").value == Unit()


def test_compile_location_abstraction_erases():
    result = _run("((lam (x bool) x) true)")
    assert result.value == Int(0)


def test_well_typed_l3_programs_run_to_values():
    corpus = [
        "(free (new (tensor true false)))",
        "(let-tensor (a b) (free (new (tensor true false))) (if a b true))",
        "(let! (x (bang true)) (if x false true))",
    ]
    for source in corpus:
        typecheck(parse_expr(source))
        result = _run(source)
        assert result.status is Status.VALUE, source
