"""Tests for the Affi parser, typechecker (affine discipline), and compiler."""

import pytest

from repro.affi import Annotations, Mode, check_with_usage, compile_expr, parse_expr, parse_type, typecheck
from repro.affi import types as ty
from repro.core.errors import ErrorCode, LinearityError, ScopeError, TypeCheckError
from repro.lcvm import Int, Status, run


def _check(source: str, **kwargs):
    return typecheck(parse_expr(source), **kwargs)


def _run(source: str):
    return run(compile_expr(parse_expr(source)))


# -- types / parser -------------------------------------------------------------


def test_parse_types():
    assert parse_type("(-o int bool)") == ty.DynLolliType(ty.INT, ty.BOOL)
    assert parse_type("(-* int int)") == ty.StatLolliType(ty.INT, ty.INT)
    assert parse_type("(! (tensor unit bool))") == ty.BangType(ty.TensorType(ty.UNIT, ty.BOOL))
    assert parse_type("(& int int)") == ty.WithType(ty.INT, ty.INT)


def test_parse_expr_modes():
    dynamic = parse_expr("(dlam (a int) a)")
    static = parse_expr("(slam (a int) a)")
    assert dynamic.mode is Mode.DYNAMIC
    assert static.mode is Mode.STATIC


# -- typechecker: affine discipline ----------------------------------------------


def test_affine_variable_used_once_is_fine():
    assert _check("(dlam (a int) a)") == ty.DynLolliType(ty.INT, ty.INT)
    assert _check("(slam (a int) a)") == ty.StatLolliType(ty.INT, ty.INT)


def test_affine_variable_may_be_dropped():
    assert _check("(dlam (a int) 3)") == ty.DynLolliType(ty.INT, ty.INT)


def test_affine_variable_used_twice_is_rejected():
    with pytest.raises(LinearityError):
        _check("(slam (a int) (tensor a a))")
    with pytest.raises(LinearityError):
        _check("(dlam (a int) (tensor a a))")


def test_with_pair_components_share_resources():
    assert _check("(slam (a int) (with a a))") == ty.StatLolliType(ty.INT, ty.WithType(ty.INT, ty.INT))


def test_if_branches_share_resources():
    assert _check("(slam (a int) (if true a a))") == ty.StatLolliType(ty.INT, ty.INT)


def test_tensor_split_is_enforced_across_application():
    with pytest.raises(LinearityError):
        _check("(slam (a (-* int int)) ((dlam (f (-* int int)) (tensor (f 1) (a 2))) a))")


def test_dynamic_lambda_may_not_capture_static_variables():
    with pytest.raises(LinearityError):
        _check("(slam (a int) (dlam (b int) a))")


def test_static_lambda_may_capture_static_variables():
    source = "(slam (a int) (slam (b int) a))"
    assert _check(source) == ty.StatLolliType(ty.INT, ty.StatLolliType(ty.INT, ty.INT))


def test_dynamic_lambda_may_capture_dynamic_variables():
    source = "(dlam (a int) (dlam (b int) a))"
    assert _check(source) == ty.DynLolliType(ty.INT, ty.DynLolliType(ty.INT, ty.INT))


def test_bang_may_not_capture_affine_resources():
    with pytest.raises(LinearityError):
        _check("(slam (a int) (bang a))")


def test_let_bang_introduces_unrestricted_variable():
    source = "(let! (x (bang 2)) (tensor x x))"
    assert _check(source) == ty.TensorType(ty.INT, ty.INT)


def test_let_tensor_binds_static_variables():
    assert _check("(let-tensor (a b) (tensor 1 true) a)") == ty.INT
    with pytest.raises(LinearityError):
        _check("(let-tensor (a b) (tensor 1 true) (tensor a (tensor a b)))")


def test_unbound_variable():
    with pytest.raises(ScopeError):
        _check("a")


def test_application_type_mismatch():
    with pytest.raises(TypeCheckError):
        _check("((dlam (a int) a) true)")


def test_annotations_record_modes():
    annotations = Annotations()
    term = parse_expr("((slam (a int) a) 1)")
    check_with_usage(term, annotations=annotations)
    assert Mode.STATIC in annotations.application_modes.values()


# -- compiler ---------------------------------------------------------------------


def test_compile_booleans_and_ints():
    assert _run("true").value == Int(0)
    assert _run("false").value == Int(1)
    assert _run("7").value == Int(7)


def test_compile_dynamic_application_installs_guard():
    assert _run("((dlam (a int) a) 5)").value == Int(5)


def test_compile_static_application_has_no_guard():
    source_static = "((slam (a int) a) 5)"
    source_dynamic = "((dlam (a int) a) 5)"
    static_steps = _run(source_static).steps
    dynamic_steps = _run(source_dynamic).steps
    assert _run(source_static).value == Int(5)
    # The dynamic path must pay for allocating and forcing the guard thunk.
    assert dynamic_steps > static_steps


def test_compile_with_pair_is_lazy():
    # Projecting .1 must not run the other component (which would fail).
    source = "(proj1 (with 1 (boundary int (+ 1 2))))"
    # The boundary-free variant is enough here: use an expression that would
    # diverge/fail if forced eagerly.
    source = "(proj1 (with 1 ((dlam (a int) a) 2)))"
    assert _run(source).value == Int(1)


def test_compile_let_tensor_destructures():
    assert _run("(let-tensor (a b) (tensor 1 2) (tensor b a))").value is not None


def test_compile_if_branches():
    assert _run("(if true 1 2)").value == Int(1)
    assert _run("(if false 1 2)").value == Int(2)


def test_compile_unused_dynamic_argument_is_never_forced():
    assert _run("((dlam (a int) 9) 5)").value == Int(9)


def test_double_use_cannot_be_expressed_statically_but_guard_exists():
    """The guard only fires via MiniML interop; plain Affi never trips it."""
    result = _run("((dlam (a int) a) 5)")
    assert result.status is Status.VALUE
    assert result.failure_code is not ErrorCode.CONV
