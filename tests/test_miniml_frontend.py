"""Tests for the MiniML parser, typechecker, and compiler."""

import pytest

from repro.core.errors import LinearityError, ParseError, ScopeError, TypeCheckError
from repro.lcvm import Int, Pair, Status, run
from repro.miniml import compile_expr, parse_expr, parse_type, typecheck
from repro.miniml import syntax as ast
from repro.miniml import types as ty


def _check(source: str, **kwargs):
    return typecheck(parse_expr(source), **kwargs)


def _run(source: str):
    return run(compile_expr(parse_expr(source)))


# -- parser / types -----------------------------------------------------------


def test_parse_type_forms():
    assert parse_type("int") == ty.INT
    assert parse_type("(forall a (-> a a))") == ty.ForallType("a", ty.FunType(ty.TypeVar("a"), ty.TypeVar("a")))
    assert parse_type("(ref (prod unit int))") == ty.RefType(ty.ProdType(ty.UNIT, ty.INT))
    assert isinstance(parse_type("(foreign bool)"), ty.ForeignType)


def test_parse_expr_forms():
    assert parse_expr("5") == ast.IntLit(5)
    assert isinstance(parse_expr("(tylam a (lam (x a) x))"), ast.TyLam)
    assert isinstance(parse_expr("(tyapp (tylam a (lam (x a) x)) int)"), ast.TyApp)
    assert isinstance(parse_expr("(let (x 1) (+ x x))"), ast.LetIn)


def test_parse_boundary_requires_foreign_parser():
    with pytest.raises(ParseError):
        parse_expr("(boundary int true)")


# -- typechecker ---------------------------------------------------------------


def test_typecheck_literals_and_arithmetic():
    assert _check("()") == ty.UNIT
    assert _check("(+ 1 2)") == ty.INT


def test_typecheck_polymorphic_identity():
    identity = "(tylam a (lam (x a) x))"
    assert _check(identity) == ty.ForallType("a", ty.FunType(ty.TypeVar("a"), ty.TypeVar("a")))
    assert _check(f"((tyapp {identity} int) 5)") == ty.INT


def test_typecheck_type_application_substitutes():
    assert _check("(tyapp (tylam a (lam (x a) x)) (prod int unit))") == ty.FunType(
        ty.ProdType(ty.INT, ty.UNIT), ty.ProdType(ty.INT, ty.UNIT)
    )


def test_typecheck_unbound_type_variable_rejected():
    with pytest.raises(TypeCheckError):
        _check("(lam (x b) x)")


def test_typecheck_references():
    assert _check("(ref 5)") == ty.RefType(ty.INT)
    assert _check("(! (ref 5))") == ty.INT
    assert _check("(set! (ref 5) 6)") == ty.UNIT
    with pytest.raises(TypeCheckError):
        _check("(set! (ref 5) unit)")


def test_typecheck_sums_and_match():
    source = "(match (inl (sum int unit) 5) (x x) (y 0))"
    assert _check(source) == ty.INT


def test_typecheck_let_and_scope():
    assert _check("(let (x 2) (+ x x))") == ty.INT
    with pytest.raises(ScopeError):
        _check("y")


def test_foreign_usage_duplication_is_rejected():
    """Two boundaries consuming the same foreign affine variable must be rejected."""

    def hook(boundary, env, type_vars, foreign_env):
        return boundary.annotation, frozenset({"a"})

    term = ast.Pair(
        ast.Boundary(ty.INT, object()),
        ast.Boundary(ty.INT, object()),
    )
    with pytest.raises(LinearityError):
        typecheck(term, boundary_hook=hook)


def test_foreign_usage_single_boundary_accepted():
    def hook(boundary, env, type_vars, foreign_env):
        return boundary.annotation, frozenset({"a"})

    term = ast.Pair(ast.Boundary(ty.INT, object()), ast.IntLit(1))
    assert typecheck(term, boundary_hook=hook) == ty.ProdType(ty.INT, ty.INT)


# -- compiler -------------------------------------------------------------------


def test_compile_arithmetic_and_functions():
    assert _run("(+ 1 2)").value == Int(3)
    assert _run("((lam (x int) (+ x x)) 21)").value == Int(42)


def test_compile_polymorphism_erases_to_unit_application():
    assert _run("((tyapp (tylam a (lam (x a) x)) int) 9)").value == Int(9)


def test_compile_pairs_sums_and_match():
    assert _run("(fst (pair 1 2))").value == Int(1)
    assert _run("(match (inr (sum int int) 3) (x 0) (y y))").value == Int(3)


def test_compile_references_with_gc_interleaving():
    result = _run("(let (r (ref 5)) (let (i (set! r 6)) (! r)))")
    assert result.value == Int(6)
    assert result.status is Status.VALUE


def test_compile_let_shadowing():
    assert _run("(let (x 1) (let (x 2) x))").value == Int(2)


def test_compiled_pair_structure():
    assert _run("(pair (pair 1 2) 3)").value == Pair(Pair(Int(1), Int(2)), Int(3))
