"""Snapshot/restore invisibility for every resumable backend's paused state.

The contract under test (``repro.core.snapshots`` plus each machine's
``snapshot()`` / ``from_snapshot``): reifying a paused execution at *any*
slice boundary and rebuilding it — in this process or a fresh spawn-context
process — must be observably invisible.  Four layers of guarantees:

* **every boundary, every backend**: for each snapshot-capable backend in
  all three case-study systems, a run restored from a snapshot taken at
  every slice boundary produces the uninterrupted run's exact result string
  and step count (and the probed execution itself finishes unperturbed —
  snapshots copy state out without touching it);
* **raw post-``callgc`` heaps**: at the LCVM machine level the restored
  run's final heap equals the uninterrupted run's address-for-address —
  exact cells, exact addresses, exact collection statistics, no
  result-rooted normalization — across the GC-precise dead-``let``
  programs from the backend-agreement suite;
* **process portability**: a snapshot pickled in this process and restored
  in a *fresh spawn-context process* (compiled units rebuilt from scratch —
  nothing shared but the bytes) finishes with the same result, steps, and
  (for the compiled LCVM machine) the same raw heap;
* **format discipline**: version/kind tampering is refused, finished
  executions refuse to snapshot, one snapshot restores many independent
  executions, and the scheduler's preempt → ``CheckpointStore`` → restart →
  ``resume`` round trip matches an uninterrupted sequential serve.
"""

import multiprocessing
import pickle
from functools import lru_cache

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.errors import ReproError
from repro.core.snapshots import SNAPSHOT_VERSION, snapshot_backend_name
from repro.interop_affine import make_system as make_affine_system
from repro.interop_l3 import make_system as make_l3_system
from repro.interop_refs import make_system as make_refs_system
from repro.lcvm import bigstep as lcvm_bigstep
from repro.lcvm import cek as lcvm_cek
from repro.lcvm import machine as lcvm_machine
from repro.lcvm.heap import HeapCell
from repro.lcvm.syntax import App, CallGc, Deref, Inl, Int, Lam, Let, Match, NewRef, Pair, Var
from repro.lcvm.values import reify
from repro.serve import Checkpoint, CheckpointStore, Request, make_default_scheduler
from repro.serve.checkpoint import CHECKPOINT_VERSION
from repro.util.workloads import (
    nested_ml_affi_boundary,
    nested_ml_l3_boundary,
    nested_refll_boundary,
)

FUEL = 200_000
MACHINE_FUEL = 500_000

_SYSTEM_BUILDERS = {
    "refs": make_refs_system,
    "affine": make_affine_system,
    "l3": make_l3_system,
}

_WORKLOADS = {
    "refs": ("RefLL", nested_refll_boundary(5)),
    "affine": ("MiniML", nested_ml_affi_boundary(5)),
    "l3": ("MiniML", nested_ml_l3_boundary(4)),
}

# One shared instance per system for the whole module (pipeline caches stay
# warm, like a serving process); every test starts fresh executions.
_SYSTEMS = {name: build() for name, build in _SYSTEM_BUILDERS.items()}

# Every snapshot-capable backend in every system: the restorer registry *is*
# the capability list, so a backend gaining snapshots is tested automatically.
CASES = [
    pytest.param(system_name, backend, id=f"{system_name}-{backend}")
    for system_name in sorted(_SYSTEMS)
    for backend in sorted(_SYSTEMS[system_name].target.restores)
]


@lru_cache(maxsize=None)
def _target_code(system_name):
    language, source = _WORKLOADS[system_name]
    return _SYSTEMS[system_name].compile_source(language, source).target_code


def _finish(execution, slice_steps):
    result = None
    while result is None:
        result = execution.step_n(slice_steps)
    return result


@lru_cache(maxsize=None)
def _baseline(system_name, backend, slice_steps):
    """The uninterrupted run's observables: (result string, step count)."""
    system = _SYSTEMS[system_name]
    execution = system.start_compiled(_target_code(system_name), fuel=FUEL, backend=backend)
    result = _finish(execution, slice_steps)
    return str(result), result.steps


def _round_trip(snapshot):
    """Snapshots must survive as bytes — every restore goes through pickle."""
    return pickle.loads(pickle.dumps(snapshot))


# ---------------------------------------------------------------------------
# Every slice boundary, every backend, all three systems
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("system_name,backend", CASES)
def test_restore_at_every_slice_boundary_is_invisible(system_name, backend):
    system = _SYSTEMS[system_name]
    # The optimizing backend folds these arithmetic workloads down to a
    # handful of transitions, so probe it at the finest slice granularity to
    # still cross at least one boundary.
    slice_steps = 1 if backend == "cek-opt" else 3
    base_str, base_steps = _baseline(system_name, backend, slice_steps)
    probe = system.start_compiled(_target_code(system_name), fuel=FUEL, backend=backend)
    boundaries = 0
    while True:
        result = probe.step_n(slice_steps)
        if result is not None:
            break
        boundaries += 1
        snapshot = probe.snapshot()
        # The kind's tail names the backend, so bare snapshots route themselves.
        assert snapshot_backend_name(snapshot) == backend
        restored = system.restore_execution(_round_trip(snapshot))
        finished = _finish(restored, slice_steps)
        assert str(finished) == base_str
        assert finished.steps == base_steps
    # A fully constant-folded run can finish inside its first slice (the
    # affine workload optimizes to a literal); the boundary guard only
    # applies when the uninterrupted run outlasts one slice.
    if base_steps > slice_steps:
        assert boundaries >= 1, "workload too shallow to cross a slice boundary"
    # Snapshotting copied state out without perturbing the probed execution.
    assert str(result) == base_str
    assert result.steps == base_steps


@pytest.mark.parametrize("system_name,backend", CASES)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    slice_steps=st.integers(min_value=1, max_value=17),
    boundary=st.integers(min_value=1, max_value=40),
)
def test_restore_at_arbitrary_boundary_matches_uninterrupted(
    system_name, backend, slice_steps, boundary
):
    """Hypothesis: whatever the slice size and whichever boundary is chosen,
    the restored run and the probed original both match the uninterrupted run."""
    system = _SYSTEMS[system_name]
    base_str, base_steps = _baseline(system_name, backend, slice_steps)
    probe = system.start_compiled(_target_code(system_name), fuel=FUEL, backend=backend)
    result = None
    for _ in range(boundary):
        result = probe.step_n(slice_steps)
        if result is not None:
            break
    if result is not None:
        assert str(result) == base_str
        assert result.steps == base_steps
        return
    restored = system.restore_execution(_round_trip(probe.snapshot()))
    finished = _finish(restored, slice_steps)
    assert str(finished) == base_str
    assert finished.steps == base_steps
    original = _finish(probe, slice_steps)
    assert str(original) == base_str
    assert original.steps == base_steps


# ---------------------------------------------------------------------------
# Raw post-callgc heap invisibility at the LCVM machine level
# ---------------------------------------------------------------------------

# The GC-precision programs from the backend-agreement suite: dead let
# bindings that a mid-run ``callgc`` must collect (or keep) exactly.
_GC_PROGRAMS = [
    Let(
        "keep",
        NewRef(Int(1)),
        Let("dead", NewRef(Int(2)), Let("_", CallGc(), Deref(Var("keep")))),
    ),
    Let(
        "dead",
        NewRef(Int(7)),
        Let("f", Lam("x", Var("x")), Let("_", CallGc(), App(Var("f"), Int(3)))),
    ),
    Let(
        "live",
        NewRef(Int(5)),
        Let("f", Lam("x", Deref(Var("live"))), Let("_", CallGc(), App(Var("f"), Int(0)))),
    ),
    Let(
        "a",
        NewRef(Int(1)),
        Match(Inl(Int(0)), "x", Let("_", CallGc(), Int(9)), "y", Deref(Var("a"))),
    ),
    Let(
        "dead",
        NewRef(Int(2)),
        Pair(NewRef(Int(3)), Let("_", CallGc(), Int(1))),
    ),
    Let(
        "r",
        NewRef(Int(1)),
        Let("r", NewRef(Int(2)), Let("_", CallGc(), Deref(Var("r")))),
    ),
]

_LCVM_MACHINES = [
    pytest.param(lcvm_machine.SubstitutionExecution, id="substitution"),
    pytest.param(lcvm_bigstep.BigStepExecution, id="bigstep"),
    pytest.param(lcvm_cek.InterpretedExecution, id="cek"),
    pytest.param(lcvm_cek.CompiledExecution, id="cek-compiled"),
]


def _raw_observables(result):
    """Result value, steps, and the raw heap: exact cells, exact addresses,
    exact collection statistics — no result-rooted normalization."""
    if isinstance(result, lcvm_bigstep.EvalResult):
        cells = {
            address: HeapCell(reify(cell.value), cell.kind)
            for address, cell in result.heap.cells.items()
        }
        return str(result.reified_value()), result.steps, cells, result.collections, result.reclaimed
    heap = result.heap
    return str(result.value), result.steps, dict(heap.cells), heap.collections, heap.reclaimed


@pytest.mark.parametrize("machine_class", _LCVM_MACHINES)
@pytest.mark.parametrize(
    "program", _GC_PROGRAMS, ids=[str(program)[:48] for program in _GC_PROGRAMS]
)
def test_lcvm_restore_preserves_raw_postgc_heap(machine_class, program):
    base = _raw_observables(_finish(machine_class(program, fuel=MACHINE_FUEL), 2))
    probe = machine_class(program, fuel=MACHINE_FUEL)
    boundaries = 0
    while True:
        result = probe.step_n(2)
        if result is not None:
            break
        boundaries += 1
        restored = machine_class.from_snapshot(_round_trip(probe.snapshot()))
        assert _raw_observables(_finish(restored, 2)) == base
    assert boundaries >= 1, "program too shallow to cross a slice boundary"
    assert _raw_observables(result) == base


# ---------------------------------------------------------------------------
# Fresh-process restores (spawn context: nothing shared but the bytes)
# ---------------------------------------------------------------------------


def _finish_system_snapshot_in_child(system_name, payload, connection):
    """Spawn target: rebuild the system from scratch, restore, run to the end."""
    try:
        system = _SYSTEM_BUILDERS[system_name]()
        execution = system.restore_execution(pickle.loads(payload))
        result = _finish(execution, 64)
        connection.send(("ok", str(result), result.steps))
    except BaseException as error:  # report, or the parent hangs on recv
        connection.send(("error", f"{type(error).__name__}: {error}", None))
    finally:
        connection.close()


def _finish_lcvm_snapshot_in_child(payload, connection):
    """Spawn target: restore a compiled LCVM machine and report its raw heap."""
    try:
        restored = lcvm_cek.CompiledExecution.from_snapshot(pickle.loads(payload))
        connection.send(("ok", repr(_raw_observables(_finish(restored, 2)))))
    except BaseException as error:
        connection.send(("error", f"{type(error).__name__}: {error}"))
    finally:
        connection.close()


def _run_in_spawned_process(target, args):
    context = multiprocessing.get_context("spawn")
    parent, child = context.Pipe()
    process = context.Process(target=target, args=tuple(args) + (child,))
    process.start()
    child.close()
    try:
        assert parent.poll(120), "spawned restore process sent nothing back"
        reply = parent.recv()
    finally:
        process.join(timeout=30)
        if process.is_alive():  # pragma: no cover - cleanup path
            process.terminate()
        parent.close()
    assert reply[0] == "ok", f"restore failed in fresh process: {reply[1]}"
    return reply[1:]


@pytest.mark.parametrize("system_name,backend", CASES)
def test_restore_in_fresh_spawned_process(system_name, backend):
    system = _SYSTEMS[system_name]
    base_str, base_steps = _baseline(system_name, backend, 64)
    probe = system.start_compiled(_target_code(system_name), fuel=FUEL, backend=backend)
    # The optimizing backend folds the workload to a couple of transitions;
    # pause after a single step so there is still mid-run state to snapshot.
    assert probe.step_n(1 if backend == "cek-opt" else 3) is None, (
        "workload too shallow to snapshot mid-run"
    )
    payload = pickle.dumps(probe.snapshot())
    result_str, steps = _run_in_spawned_process(
        _finish_system_snapshot_in_child, (system_name, payload)
    )
    assert result_str == base_str
    assert steps == base_steps


def test_lcvm_raw_heap_survives_fresh_spawned_process():
    program = _GC_PROGRAMS[0]
    base = repr(_raw_observables(_finish(lcvm_cek.CompiledExecution(program, fuel=MACHINE_FUEL), 2)))
    probe = lcvm_cek.CompiledExecution(program, fuel=MACHINE_FUEL)
    assert probe.step_n(2) is None
    payload = pickle.dumps(probe.snapshot())
    (raw,) = _run_in_spawned_process(_finish_lcvm_snapshot_in_child, (payload,))
    assert raw == base


# ---------------------------------------------------------------------------
# Format discipline
# ---------------------------------------------------------------------------


def _mid_run_snapshot(system_name, backend=None):
    system = _SYSTEMS[system_name]
    probe = system.start_compiled(_target_code(system_name), fuel=FUEL, backend=backend)
    assert probe.step_n(3) is None
    return probe.snapshot()


def test_finished_execution_refuses_to_snapshot():
    system = _SYSTEMS["refs"]
    execution = system.start_compiled(_target_code("refs"), fuel=FUEL)
    _finish(execution, 64)
    assert execution.can_snapshot()  # the machine supports snapshots...
    with pytest.raises(ValueError, match="finished"):
        execution.snapshot()  # ...but there is no paused state to reify


def test_version_and_kind_tampering_is_refused():
    system = _SYSTEMS["refs"]
    snapshot = _mid_run_snapshot("refs")
    with pytest.raises(ValueError):
        system.restore_execution(dict(snapshot, version=SNAPSHOT_VERSION + 1))
    # A kind whose tail names no registered backend cannot route at all.
    with pytest.raises(ReproError):
        system.restore_execution(dict(snapshot, kind="garbage"))
    # Explicitly routing to the wrong restorer trips the kind check.
    wrong = [name for name in system.target.restores if name != snapshot_backend_name(snapshot)]
    with pytest.raises(ValueError):
        system.target.restore(snapshot, backend=wrong[0])
    # An unregistered backend name is refused before any restore runs.
    with pytest.raises(ReproError):
        system.target.restore(snapshot, backend="no-such-backend")


def test_one_snapshot_restores_many_independent_executions():
    system = _SYSTEMS["affine"]
    base_str, base_steps = _baseline("affine", "cek-compiled", 5)
    snapshot = _mid_run_snapshot("affine", backend="cek-compiled")
    first = system.restore_execution(snapshot)
    second = system.restore_execution(snapshot)
    first_result = _finish(first, 5)  # runs (and mutates its heap) to the end...
    second_result = _finish(second, 5)  # ...without contaminating its sibling
    assert (str(first_result), first_result.steps) == (base_str, base_steps)
    assert (str(second_result), second_result.steps) == (base_str, base_steps)


# ---------------------------------------------------------------------------
# Preempt -> persist -> restart -> resume (the durable round trip)
# ---------------------------------------------------------------------------


def _preempt_requests():
    return [
        Request(language="RefLL", source=nested_refll_boundary(6), request_id="refs-deep"),
        Request(
            language="RefLL",
            source=nested_refll_boundary(5),
            backend="substitution",
            request_id="refs-oracle",
        ),
        Request(
            language="MiniML",
            system="affine",
            source=nested_ml_affi_boundary(6),
            request_id="affine-deep",
        ),
        Request(
            language="MiniML",
            system="l3",
            source=nested_ml_l3_boundary(4),
            backend="bigstep",
            request_id="l3-bigstep",
        ),
    ]


def test_preempt_persist_restart_resume_round_trip(tmp_path):
    scheduler = make_default_scheduler(slice_steps=8)
    baseline = {
        response.request.request_id: response
        for response in scheduler.serve_sequential(_preempt_requests())
    }
    served = scheduler.serve_preempting(_preempt_requests(), max_slices=2)
    preempted = [response for response in served if response.preempted]
    assert preempted, "ceiling too low to preempt anything"
    store = CheckpointStore(str(tmp_path))
    for response in preempted:
        assert response.result is None
        assert response.checkpoint is not None
        assert response.checkpoint.slices == 2  # the final boundary *is* the state
        store.save(response.checkpoint)
    for response in served:
        if not response.preempted:  # finished responses carry no stale checkpoint
            assert response.checkpoint is None

    # "Restart": a brand-new scheduler over brand-new systems — the durable
    # pickles are the only thing carried across.
    restarted = make_default_scheduler(slice_steps=8)
    reloaded = CheckpointStore(str(tmp_path)).load_all()
    assert len(reloaded) == len(preempted)
    resumed = {
        response.request.request_id: response for response in restarted.resume(reloaded)
    }
    finished = {
        response.request.request_id: response for response in served if not response.preempted
    }
    for request_id, base in baseline.items():
        assert base.error is None
        final = finished[request_id] if request_id in finished else resumed[request_id]
        assert final.error is None
        assert str(final.result) == str(base.result)
        assert final.result.steps == base.result.steps
    for response in resumed.values():
        assert response.resumed


def test_checkpoint_store_rejects_version_skew(tmp_path):
    store = CheckpointStore(str(tmp_path))
    checkpoint = Checkpoint(
        request=_preempt_requests()[0],
        system="refs",
        backend="cek-compiled",
        snapshot=_mid_run_snapshot("refs"),
        slices=1,
        version=CHECKPOINT_VERSION + 1,
    )
    path = store.save(checkpoint)
    with pytest.raises(ValueError, match="version"):
        store.load(path)
