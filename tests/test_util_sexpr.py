"""Tests for the shared s-expression reader."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ParseError
from repro.util.sexpr import SAtom, SList, parse_many, parse_sexpr, tokenize


def test_parse_atom_symbol():
    atom = parse_sexpr("hello")
    assert isinstance(atom, SAtom)
    assert atom.text == "hello"
    assert not atom.is_int


def test_parse_atom_integer():
    atom = parse_sexpr("42")
    assert atom.is_int
    assert atom.int_value == 42


def test_parse_negative_integer():
    atom = parse_sexpr("-7")
    assert atom.is_int
    assert atom.int_value == -7


def test_lone_dash_is_not_integer():
    atom = parse_sexpr("-")
    assert not atom.is_int


def test_int_value_of_symbol_raises():
    with pytest.raises(ParseError):
        parse_sexpr("foo").int_value


def test_parse_flat_list():
    form = parse_sexpr("(a b c)")
    assert isinstance(form, SList)
    assert [item.text for item in form] == ["a", "b", "c"]


def test_parse_nested_list():
    form = parse_sexpr("(a (b c) d)")
    assert len(form) == 3
    assert isinstance(form[1], SList)
    assert form[1][0].text == "b"


def test_parse_empty_list():
    form = parse_sexpr("()")
    assert isinstance(form, SList)
    assert len(form) == 0


def test_comments_are_ignored():
    form = parse_sexpr("(a ; this is a comment\n b)")
    assert [item.text for item in form] == ["a", "b"]


def test_unclosed_paren_raises():
    with pytest.raises(ParseError):
        parse_sexpr("(a b")


def test_stray_close_paren_raises():
    with pytest.raises(ParseError):
        parse_sexpr(")")


def test_trailing_input_raises():
    with pytest.raises(ParseError):
        parse_sexpr("(a) (b)")


def test_empty_input_raises():
    with pytest.raises(ParseError):
        parse_sexpr("   ")


def test_parse_many_reads_all_forms():
    forms = parse_many("(a) b (c d)")
    assert len(forms) == 3
    assert isinstance(forms[0], SList)
    assert isinstance(forms[1], SAtom)


def test_spans_cover_source():
    form = parse_sexpr("(ab cd)")
    assert form.span.start == 0
    assert form.span.end == 7


def test_tokenize_offsets():
    tokens = tokenize("(ab  cd)")
    assert [token.text for token in tokens] == ["(", "ab", "cd", ")"]
    assert tokens[2].start == 5


def test_str_roundtrip_of_list():
    form = parse_sexpr("(a (b c) d)")
    assert str(form) == "(a (b c) d)"


_symbol = st.text(alphabet="abcdefghijklmnop", min_size=1, max_size=6)


@st.composite
def _sexpr_text(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        return draw(_symbol)
    children = draw(st.lists(_sexpr_text(depth=depth - 1), min_size=0, max_size=4))
    return "(" + " ".join(children) + ")"


@given(_sexpr_text())
def test_parse_str_roundtrip(text):
    """Printing a parsed s-expression and reparsing yields an equal tree."""
    parsed = parse_sexpr(text)
    assert parse_sexpr(str(parsed)) == parsed
