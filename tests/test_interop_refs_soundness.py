"""Tests for the bounded soundness checkers of the §3 system (Lemma 3.1, Thms 3.2-3.4)."""

import pytest

from repro.core.errors import ErrorCode
from repro.interop_refs import (
    RefsModel,
    check_convertibility_soundness,
    check_fundamental_property,
    check_reference_sharing_requires_identical_interpretations,
    check_type_safety,
    make_convertibility,
    make_system,
)
from repro.interop_refs.conversions import StackConversion
from repro.interop_refs.model import LANGUAGE_A, LANGUAGE_B
from repro.refhl import parse_type as parse_hl_type
from repro.refll import parse_type as parse_ll_type
from repro.stacklang import Num, Push, program


@pytest.fixture(scope="module")
def system():
    return make_system()


@pytest.fixture(scope="module")
def model():
    return RefsModel()


def test_convertibility_soundness_holds_on_default_pairs(system, model):
    report = check_convertibility_soundness(system=system, model=model)
    assert report.ok, str(report)
    assert report.checked > 20


def test_fundamental_property_holds_on_corpus(system, model):
    report = check_fundamental_property(system=system, model=model)
    assert report.ok, str(report)
    assert report.checked == 25


def test_type_safety_holds_on_corpus(system):
    report = check_type_safety(system=system)
    assert report.ok, str(report)


def test_reference_sharing_design_lesson(model):
    report = check_reference_sharing_requires_identical_interpretations(model=model)
    assert report.ok, str(report)
    assert report.checked == 4


def test_system_run_soundness_checks_aggregates(system):
    reports = system.run_soundness_checks()
    assert set(reports) == {"convertibility-soundness", "fundamental-property", "type-safety"}
    assert all(report.ok for report in reports.values())


def test_unsound_glue_is_detected_by_the_checker(model):
    """Register a deliberately wrong conversion and confirm Lemma 3.1 fails.

    The bogus rule converts ``unit`` to ``int`` by leaving the value alone but
    claims the reverse direction is also a no-op — unsound because ``V[[unit]]``
    contains only 0.
    """
    relation = make_convertibility()
    unit_type = parse_hl_type("unit")
    int_type = parse_ll_type("int")
    bogus = StackConversion.from_suffixes(unit_type, int_type, (), (), rule_name="bogus unit ~ int")
    relation.register_pair(unit_type, int_type, bogus.apply_a_to_b, bogus.apply_b_to_a, name="bogus")
    # Overwrite with a StackConversion-producing rule so the checker sees suffixes.
    from repro.core.convertibility import ConvertibilityRule

    def matcher(query_a, query_b, _relation):
        if query_a == unit_type and query_b == int_type:
            return StackConversion.from_suffixes(unit_type, int_type, (), (), rule_name="bogus")
        return None

    relation.register(ConvertibilityRule("bogus", matcher))
    report = check_convertibility_soundness(relation=relation, model=model, pairs=[("unit", "int")])
    assert not report.ok
    assert any("int -> unit" in str(ce) or "unit" in str(ce.source_type) for ce in report.counterexamples)


def test_checker_flags_non_derivable_pair(model):
    relation = make_convertibility()
    report = check_convertibility_soundness(relation=relation, model=model, pairs=[("(ref unit)", "(ref int)")])
    assert not report.ok


def test_ill_typed_target_code_is_outside_expression_relation(model):
    """fail Type is never acceptable behaviour for a well-typed program."""
    from repro.stacklang import Fail

    world = model.default_world(16)
    assert not model.expression_in_type(LANGUAGE_A, parse_hl_type("bool"), world, program(Fail(ErrorCode.TYPE)))
    assert not model.expression_in_type(LANGUAGE_B, parse_ll_type("int"), world, program(Push(Num(0)), Fail(ErrorCode.TYPE)))


def test_reports_render_summaries(system, model):
    report = check_reference_sharing_requires_identical_interpretations(model=model)
    assert "OK" in report.summary()
    assert "membership checks" in str(report)
