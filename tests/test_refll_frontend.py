"""Tests for the RefLL parser, typechecker, and compiler."""

import pytest

from repro.core.errors import ConvertibilityError, ErrorCode, ParseError, ScopeError, TypeCheckError
from repro.refll import compile_expr, parse_expr, parse_type, typecheck
from repro.refll import syntax as ast
from repro.refll.types import INT, ArrayType, FunType, RefType
from repro.stacklang import Arr, Num, Status, run


# -- parser -----------------------------------------------------------------


def test_parse_integer_literal():
    assert parse_expr("42") == ast.IntLit(42)
    assert parse_expr("-3") == ast.IntLit(-3)


def test_parse_variable():
    assert parse_expr("x") == ast.Var("x")


def test_parse_array_and_index():
    term = parse_expr("(idx (array 1 2 3) 0)")
    assert isinstance(term, ast.Index)
    assert isinstance(term.array, ast.ArrayLit)
    assert len(term.array.elements) == 3


def test_parse_lambda_application_add():
    term = parse_expr("((lam (x int) (+ x 1)) 41)")
    assert isinstance(term, ast.App)
    assert isinstance(term.function, ast.Lam)


def test_parse_if0_and_refs():
    assert isinstance(parse_expr("(if0 0 1 2)"), ast.If0)
    assert isinstance(parse_expr("(ref 1)"), ast.NewRef)
    assert isinstance(parse_expr("(! (ref 1))"), ast.Deref)
    assert isinstance(parse_expr("(set! (ref 1) 2)"), ast.Assign)


def test_parse_boundary_embeds_refhl():
    term = parse_expr("(boundary int true)")
    assert isinstance(term, ast.Boundary)
    from repro.refhl import syntax as hl_ast

    assert term.foreign_term == hl_ast.BoolLit(True)


def test_parse_rejects_empty_list():
    with pytest.raises(ParseError):
        parse_expr("()")


def test_parse_types():
    assert parse_type("int") == INT
    assert parse_type("(array (ref int))") == ArrayType(RefType(INT))
    assert parse_type("(-> int (array int))") == FunType(INT, ArrayType(INT))


# -- typechecker -------------------------------------------------------------


def test_typecheck_arithmetic():
    assert typecheck(parse_expr("(+ 1 2)")) == INT


def test_typecheck_add_requires_ints():
    with pytest.raises(TypeCheckError):
        typecheck(parse_expr("(+ 1 (array 1))"))


def test_typecheck_array_and_index():
    assert typecheck(parse_expr("(array 1 2 3)")) == ArrayType(INT)
    assert typecheck(parse_expr("(idx (array 1 2 3) 0)")) == INT


def test_typecheck_heterogeneous_array_rejected():
    with pytest.raises(TypeCheckError):
        typecheck(parse_expr("(array 1 (array 2))"))


def test_typecheck_empty_array_rejected():
    with pytest.raises(TypeCheckError):
        typecheck(parse_expr("(array)"))


def test_typecheck_lambda_application():
    assert typecheck(parse_expr("((lam (x int) (+ x 1)) 41)")) == INT


def test_typecheck_if0():
    assert typecheck(parse_expr("(if0 0 1 2)")) == INT


def test_typecheck_if0_requires_int_condition():
    with pytest.raises(TypeCheckError):
        typecheck(parse_expr("(if0 (array 1) 1 2)"))


def test_typecheck_references():
    assert typecheck(parse_expr("(ref 5)")) == RefType(INT)
    assert typecheck(parse_expr("(! (ref 5))")) == INT
    assert typecheck(parse_expr("(set! (ref 1) 2)")) == INT


def test_typecheck_unbound_variable():
    with pytest.raises(ScopeError):
        typecheck(parse_expr("y"))


def test_typecheck_boundary_without_system_is_rejected():
    with pytest.raises(ConvertibilityError):
        typecheck(parse_expr("(boundary int true)"))


# -- compiler ----------------------------------------------------------------


def _run_closed(source: str):
    return run(compile_expr(parse_expr(source)))


def test_compile_arithmetic():
    assert _run_closed("(+ 1 2)").value == Num(3)


def test_compile_array_literal_preserves_order():
    assert _run_closed("(array 1 2 3)").value == Arr((Num(1), Num(2), Num(3)))


def test_compile_index():
    assert _run_closed("(idx (array 10 20 30) 2)").value == Num(30)


def test_compile_index_out_of_bounds_fails_idx():
    result = _run_closed("(idx (array 10) 5)")
    assert result.status is Status.FAIL
    assert result.failure_code is ErrorCode.IDX


def test_compile_application():
    assert _run_closed("((lam (x int) (+ x 1)) 41)").value == Num(42)


def test_compile_if0():
    assert _run_closed("(if0 0 10 20)").value == Num(10)
    assert _run_closed("(if0 3 10 20)").value == Num(20)


def test_compile_reference_roundtrip():
    assert _run_closed("(! (ref 5))").value == Num(5)


def test_compile_assignment_then_read():
    source = "((lam (r (ref int)) ((lam (ignore int) (! r)) (set! r 9))) (ref 1))"
    assert _run_closed(source).value == Num(9)


def test_compile_higher_order_function():
    source = "((lam (f (-> int int)) (f 3)) (lam (y int) (+ y y)))"
    assert _run_closed(source).value == Num(6)


def test_compile_nested_arrays():
    result = _run_closed("(idx (array (array 1 2) (array 3 4)) 1)")
    assert result.value == Arr((Num(3), Num(4)))
