"""Tests for the RefHL parser, typechecker, and compiler."""

import pytest

from repro.core.errors import ConvertibilityError, ParseError, ScopeError, TypeCheckError
from repro.refhl import compile_expr, parse_expr, parse_type, typecheck
from repro.refhl import syntax as ast
from repro.refhl.types import BOOL, UNIT, BoolType, FunType, ProdType, RefType, SumType
from repro.stacklang import Num, Status, run


# -- parser -----------------------------------------------------------------


def test_parse_booleans_and_unit():
    assert parse_expr("true") == ast.BoolLit(True)
    assert parse_expr("false") == ast.BoolLit(False)
    assert parse_expr("unit") == ast.UnitLit()
    assert parse_expr("()") == ast.UnitLit()


def test_parse_variable():
    assert parse_expr("x") == ast.Var("x")


def test_parse_lambda_and_application():
    term = parse_expr("((lam (x bool) x) true)")
    assert isinstance(term, ast.App)
    assert isinstance(term.function, ast.Lam)
    assert term.function.parameter_type == BOOL


def test_parse_match():
    term = parse_expr("(match (inl (sum bool unit) true) (x x) (y false))")
    assert isinstance(term, ast.Match)
    assert term.left_name == "x"
    assert term.right_name == "y"


def test_parse_reference_forms():
    assert isinstance(parse_expr("(ref true)"), ast.NewRef)
    assert isinstance(parse_expr("(! (ref true))"), ast.Deref)
    assert isinstance(parse_expr("(set! (ref true) false)"), ast.Assign)


def test_parse_boundary_embeds_refll():
    term = parse_expr("(boundary bool 5)")
    assert isinstance(term, ast.Boundary)
    assert term.annotation == BOOL
    from repro.refll import syntax as ll_ast

    assert term.foreign_term == ll_ast.IntLit(5)


def test_parse_rejects_integer_literal():
    with pytest.raises(ParseError):
        parse_expr("17")


def test_parse_rejects_bad_arity():
    with pytest.raises(ParseError):
        parse_expr("(if true false)")


def test_parse_types():
    assert parse_type("bool") == BOOL
    assert parse_type("(ref (sum unit bool))") == RefType(SumType(UNIT, BOOL))
    assert parse_type("(-> bool (prod bool unit))") == FunType(BOOL, ProdType(BOOL, UNIT))


def test_parse_type_rejects_unknown():
    with pytest.raises(ParseError):
        parse_type("(list bool)")


# -- typechecker -------------------------------------------------------------


def test_typecheck_literals():
    assert typecheck(parse_expr("true")) == BOOL
    assert typecheck(parse_expr("unit")) == UNIT


def test_typecheck_if():
    assert typecheck(parse_expr("(if true false true)")) == BOOL


def test_typecheck_if_requires_bool_condition():
    with pytest.raises(TypeCheckError):
        typecheck(parse_expr("(if (pair true true) false true)"))


def test_typecheck_if_branches_must_agree():
    with pytest.raises(TypeCheckError):
        typecheck(parse_expr("(if true unit true)"))


def test_typecheck_lambda_and_application():
    term = parse_expr("((lam (x bool) (if x false true)) true)")
    assert typecheck(term) == BOOL


def test_typecheck_application_argument_mismatch():
    with pytest.raises(TypeCheckError):
        typecheck(parse_expr("((lam (x bool) x) unit)"))


def test_typecheck_pair_projections():
    assert typecheck(parse_expr("(fst (pair true unit))")) == BOOL
    assert typecheck(parse_expr("(snd (pair true unit))")) == UNIT


def test_typecheck_sum_and_match():
    term = parse_expr("(match (inl (sum bool unit) true) (x x) (y false))")
    assert typecheck(term) == BOOL


def test_typecheck_inl_payload_mismatch():
    with pytest.raises(TypeCheckError):
        typecheck(parse_expr("(inl (sum bool unit) unit)"))


def test_typecheck_references():
    assert typecheck(parse_expr("(ref true)")) == RefType(BOOL)
    assert typecheck(parse_expr("(! (ref true))")) == BOOL
    assert typecheck(parse_expr("(set! (ref true) false)")) == UNIT


def test_typecheck_assignment_type_mismatch():
    with pytest.raises(TypeCheckError):
        typecheck(parse_expr("(set! (ref true) unit)"))


def test_typecheck_unbound_variable():
    with pytest.raises(ScopeError):
        typecheck(parse_expr("x"))


def test_typecheck_variable_from_environment():
    assert typecheck(parse_expr("x"), env={"x": RefType(BOOL)}) == RefType(BOOL)


def test_typecheck_boundary_without_system_is_rejected():
    with pytest.raises(ConvertibilityError):
        typecheck(parse_expr("(boundary bool 1)"))


# -- compiler ----------------------------------------------------------------


def _run_closed(source: str):
    return run(compile_expr(parse_expr(source)))


def test_compile_true_is_zero():
    assert _run_closed("true").value == Num(0)


def test_compile_false_is_one():
    assert _run_closed("false").value == Num(1)


def test_compile_if_branches_on_truth():
    assert _run_closed("(if true false true)").value == Num(1)
    assert _run_closed("(if false false true)").value == Num(0)


def test_compile_application():
    assert _run_closed("((lam (x bool) (if x false true)) true)").value == Num(1)


def test_compile_pair_and_projections():
    assert _run_closed("(fst (pair true false))").value == Num(0)
    assert _run_closed("(snd (pair true false))").value == Num(1)


def test_compile_match_left_and_right():
    assert _run_closed("(match (inl (sum bool bool) false) (x x) (y true))").value == Num(1)
    assert _run_closed("(match (inr (sum bool bool) false) (x true) (y y))").value == Num(1)


def test_compile_references_roundtrip():
    assert _run_closed("(! (ref false))").value == Num(1)


def test_compile_assignment_returns_unit_encoding():
    assert _run_closed("(set! (ref true) false)").value == Num(0)


def test_compile_nested_state():
    source = "((lam (r (ref bool)) (if (! r) false (! r))) (ref false))"
    assert _run_closed(source).value == Num(1)


def test_compiled_well_typed_programs_never_fail_type(subtests=None):
    corpus = [
        "(if true false true)",
        "(fst (pair (ref true) false))",
        "(match (inl (sum bool unit) true) (x x) (y false))",
        "((lam (x (prod bool bool)) (snd x)) (pair true false))",
    ]
    for source in corpus:
        result = _run_closed(source)
        assert result.status is Status.VALUE
