"""E9 — §5: transferring memory between manual management and the GC.

Compares the two directions of the ``ref τ ∼ REF τ̄`` conversion:

* L3 → MiniML uses ``gcmov`` and transfers ownership *without copying*;
* MiniML → L3 must copy into a fresh manually managed cell;

and contrasts the paper's no-copy design against a strawman that always
copies (the "less general rule" mentioned in §5), to quantify what the
linear-capability reasoning buys.
"""

import pytest

from repro.interop_l3 import make_system
from repro.lcvm import machine as lcvm_machine
from repro.lcvm import syntax as t

TRANSFERS = 20


@pytest.fixture(scope="module")
def system():
    return make_system()


def _repeat_transfer_l3_to_ml(depth: int) -> str:
    """A MiniML expression that receives ``depth`` fresh L3 cells and sums them."""
    parts = "0"
    for _ in range(depth):
        parts = f"(+ (! (boundary (ref int) (new true))) {parts})"
    return parts


def _repeat_transfer_ml_to_l3(depth: int) -> str:
    """An L3-bouncing MiniML expression that copies a GC ref into L3 ``depth`` times."""
    parts = "0"
    for _ in range(depth):
        parts = f"(+ (boundary int (free (boundary (refpkg bool) (ref 1)))) {parts})"
    return parts


def test_l3_to_miniml_transfer_no_copy(benchmark, system):
    unit = system.compile_source("MiniML", _repeat_transfer_l3_to_ml(TRANSFERS))
    result = benchmark(lambda: lcvm_machine.run(unit.target_code, fuel=2_000_000))
    assert result.value is not None
    # No-copy invariant: exactly one cell was ever allocated per transfer (the
    # cell L3 created and gcmov handed over); once read, the transferred cells
    # become garbage and later callgc-before-alloc collections reclaim them.
    assert len(result.heap) + result.heap.reclaimed == TRANSFERS
    benchmark.extra_info["steps"] = result.steps
    benchmark.extra_info["cells"] = len(result.heap)
    benchmark.extra_info["reclaimed"] = result.heap.reclaimed


def test_miniml_to_l3_transfer_copies(benchmark, system):
    unit = system.compile_source("MiniML", _repeat_transfer_ml_to_l3(TRANSFERS))
    result = benchmark(lambda: lcvm_machine.run(unit.target_code, fuel=2_000_000))
    assert result.value is not None
    benchmark.extra_info["steps"] = result.steps
    benchmark.extra_info["cells"] = len(result.heap)


def test_gcmov_vs_copy_strawman(benchmark, system):
    """Shape claim: the gcmov transfer needs fewer steps and cells than copying."""
    relation = system.convertibility
    from repro.l3 import types as l3_ty
    from repro.miniml import types as ml_ty

    conversion = relation.require(ml_ty.RefType(ml_ty.INT), l3_ty.reference_package(l3_ty.BOOL))
    l3_cell = t.Let("pkg%bench", t.Alloc(t.Int(0)), t.Pair(t.Unit(), t.Var("pkg%bench")))

    transfer_program = conversion.apply_b_to_a(l3_cell)
    copy_program = t.Let(
        "src%bench",
        l3_cell,
        t.Let("copy%bench", t.NewRef(t.Deref(t.Snd(t.Var("src%bench")))), t.Var("copy%bench")),
    )

    def measure():
        moved = lcvm_machine.run(transfer_program, fuel=100_000)
        copied = lcvm_machine.run(copy_program, fuel=100_000)
        return moved, copied

    moved, copied = benchmark(measure)
    assert len(moved.heap) == 1  # ownership transfer: one cell total
    assert len(copied.heap) == 2  # strawman copy: original + duplicate
    benchmark.extra_info["moved_steps"] = moved.steps
    benchmark.extra_info["copied_steps"] = copied.steps
