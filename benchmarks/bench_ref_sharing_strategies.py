"""E4 — §3 Discussion: direct sharing vs copy-and-convert vs read/write proxies.

The paper argues qualitatively that proxies impose a per-access cost, copying
imposes a one-time cost (and loses aliasing), and direct sharing is free but
requires identical value interpretations.  This harness measures all three on
the StackLang machine: wall-clock time via pytest-benchmark plus the exact
machine step counts in ``extra_info``.
"""

import pytest

from repro.interop_refs.strategies import build_read_workloads, build_write_workloads

ACCESS_COUNT = 200


@pytest.mark.parametrize("strategy", ["direct", "copy", "proxy"])
def test_reads_through_shared_reference(benchmark, strategy):
    workload = build_read_workloads(ACCESS_COUNT)[strategy]
    result = benchmark(workload.run)
    assert result.value is not None
    benchmark.extra_info["machine_steps"] = workload.steps()
    benchmark.extra_info["accesses"] = ACCESS_COUNT


@pytest.mark.parametrize("strategy", ["direct", "copy", "proxy"])
def test_writes_through_shared_reference(benchmark, strategy):
    workload = build_write_workloads(ACCESS_COUNT)[strategy]
    result = benchmark(workload.run)
    assert result.status.value in ("value", "empty")
    benchmark.extra_info["machine_steps"] = workload.steps()
    benchmark.extra_info["accesses"] = ACCESS_COUNT


def test_proxy_per_access_overhead_grows_with_accesses(benchmark):
    """The shape claim: proxy overhead is linear in accesses, copy's is constant."""

    def measure():
        small = build_read_workloads(20)
        large = build_read_workloads(200)
        return {
            "proxy_overhead_small": small["proxy"].steps() - small["direct"].steps(),
            "proxy_overhead_large": large["proxy"].steps() - large["direct"].steps(),
            "copy_overhead_small": small["copy"].steps() - small["direct"].steps(),
            "copy_overhead_large": large["copy"].steps() - large["direct"].steps(),
        }

    overheads = benchmark(measure)
    assert overheads["proxy_overhead_large"] > overheads["proxy_overhead_small"] * 5
    assert overheads["copy_overhead_large"] == overheads["copy_overhead_small"]
    benchmark.extra_info.update(overheads)
