"""E15 — front-end throughput: parse + typecheck + compile for every language.

Not a claim from the paper, but the baseline cost of the substrate every other
experiment runs on; regressions here distort every other measurement.
"""

import pytest

from repro.interop_affine import make_system as make_affine_system
from repro.interop_l3 import make_system as make_l3_system
from repro.interop_refs import make_system as make_refs_system

SOURCES = {
    ("refs", "RefHL"): "(match (inl (sum bool unit) true) (x (if x false true)) (y false))",
    ("refs", "RefLL"): "((lam (f (-> int int)) (f (idx (array 1 2 3) 1))) (lam (y int) (+ y y)))",
    ("affine", "Affi"): "(let-tensor (a b) (tensor 1 true) (if b (tensor a 1) (tensor 2 a)))",
    ("affine", "MiniML"): "((lam (p (prod int int)) (+ (fst p) (snd p))) (pair 20 22))",
    ("l3", "MiniML"): "((tyapp (tylam a (lam (x a) x)) int) 5)",
    ("l3", "L3"): "(free (new (tensor true false)))",
}

_FACTORIES = {"refs": make_refs_system, "affine": make_affine_system, "l3": make_l3_system}


@pytest.fixture(scope="module")
def systems():
    return {name: factory() for name, factory in _FACTORIES.items()}


@pytest.mark.parametrize("system_name,language", list(SOURCES))
def test_frontend_pipeline(benchmark, systems, system_name, language):
    system = systems[system_name]
    source = SOURCES[(system_name, language)]

    unit = benchmark(lambda: system.compile_source(language, source))
    assert unit.target_code is not None
    benchmark.extra_info["language"] = language
    benchmark.extra_info["system"] = system_name
