"""E13 — end-to-end boundary-crossing cost in all three case studies.

Measures the full pipeline cost (parse + typecheck + compile + run) of a
program that stays within one language against the same computation that
crosses the language boundary repeatedly, for each of the §3, §4, and §5
systems.
"""

import pytest

from repro.interop_affine import make_system as make_affine_system
from repro.interop_l3 import make_system as make_l3_system
from repro.interop_refs import make_system as make_refs_system

CROSSINGS = 10


def _nested_refll_boundary(depth: int) -> str:
    """RefLL int expression that bounces through RefHL ``depth`` times."""
    source = "1"
    for _ in range(depth):
        source = f"(+ 1 (boundary int (if (boundary bool {source}) false true)))"
    return source


def _nested_ml_affi_boundary(depth: int) -> str:
    source = "1"
    for _ in range(depth):
        source = f"(+ 1 (boundary int (boundary int {source})))"
    return source


@pytest.mark.parametrize(
    "label,factory,language,source",
    [
        ("refs/pure", make_refs_system, "RefLL", "(+ 1 (+ 1 (+ 1 1)))"),
        ("refs/crossing", make_refs_system, "RefLL", _nested_refll_boundary(CROSSINGS)),
        ("affine/pure", make_affine_system, "MiniML", "(+ 1 (+ 1 (+ 1 1)))"),
        ("affine/crossing", make_affine_system, "MiniML", _nested_ml_affi_boundary(CROSSINGS)),
        ("l3/pure", make_l3_system, "MiniML", "(! (ref 5))"),
        ("l3/crossing", make_l3_system, "MiniML", "(! (boundary (ref int) (new true)))"),
    ],
)
def test_boundary_crossing_pipeline(benchmark, label, factory, language, source):
    system = factory()

    def pipeline():
        return system.run_source(language, source)

    result = benchmark(pipeline)
    assert result.ok, f"{label}: {result}"
    benchmark.extra_info["label"] = label
    benchmark.extra_info["steps"] = result.steps
