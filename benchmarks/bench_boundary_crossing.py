"""E13 — end-to-end boundary-crossing cost in all three case studies.

Measures the full pipeline cost (parse + typecheck + compile + run) of a
program that stays within one language against the same computation that
crosses the language boundary repeatedly, for each of the §3, §4, and §5
systems; then compares the evaluator backends (``substitution`` reference
machine vs ``bigstep`` vs ``cek`` vs ``cek-compiled``) on deep-crossing
workloads, and measures what the pipeline cache buys on repeated submissions
of the same program.

Besides the pytest-benchmark entry points, the module is runnable as a
script: it times every registered backend on the deep-crossing workloads,
writes machine-readable ``BENCH_boundary_crossing.json`` (per-backend
timings plus speedup ratios) so the perf trajectory is tracked across PRs,
and with ``--check`` exits non-zero if ``cek-compiled`` regresses below the
interpreted ``cek`` backend on any workload, if the optimizing ``cek-opt``
backend fails to improve on ``cek-compiled`` on at least one deep-crossing
workload, or if the glue pre-resolution counters show the compile phase
still performing per-crossing dynamic convertibility lookups:

    PYTHONPATH=src python benchmarks/bench_boundary_crossing.py --check

Trajectory note (step-count-sensitive): the ``substitution`` timings in this
benchmark improved by a constant factor when the reference machine stopped
recomputing ``mentioned_locations`` of the whole program on *every* step —
the walk now runs only when a ``callgc`` redex actually fires.  Step
*counts* are unchanged (the semantics reduces the same redexes); per-step
cost fell, so cross-PR comparisons of ``substitution`` wall-clock around
that change measure the hoist, not the machine.  The win multiplies under
the serving layer, where the oracle now runs sliced (many ``step`` calls per
request) instead of blocking.
"""

import json
import sys
import time

import pytest

from repro.interop_affine import make_system as make_affine_system
from repro.interop_l3 import make_system as make_l3_system
from repro.interop_refs import make_system as make_refs_system
from repro.util.workloads import (
    nested_ml_affi_boundary as _nested_ml_affi_boundary,
    nested_ml_l3_boundary as _nested_ml_l3_boundary,
    nested_refll_boundary as _nested_refll_boundary,
)

CROSSINGS = 10
DEEP_CROSSINGS = 40
RUN_FUEL = 5_000_000


@pytest.mark.parametrize(
    "label,factory,language,source",
    [
        ("refs/pure", make_refs_system, "RefLL", "(+ 1 (+ 1 (+ 1 1)))"),
        ("refs/crossing", make_refs_system, "RefLL", _nested_refll_boundary(CROSSINGS)),
        ("affine/pure", make_affine_system, "MiniML", "(+ 1 (+ 1 (+ 1 1)))"),
        ("affine/crossing", make_affine_system, "MiniML", _nested_ml_affi_boundary(CROSSINGS)),
        ("l3/pure", make_l3_system, "MiniML", "(! (ref 5))"),
        ("l3/crossing", make_l3_system, "MiniML", "(! (boundary (ref int) (new true)))"),
    ],
)
def test_boundary_crossing_pipeline(benchmark, label, factory, language, source):
    system = factory()

    def pipeline():
        return system.run_source(language, source)

    result = benchmark(pipeline)
    assert result.ok, f"{label}: {result}"
    benchmark.extra_info["label"] = label
    benchmark.extra_info["steps"] = result.steps
    benchmark.extra_info["cache"] = system.cache_stats()


# -- backend comparison on deep crossings ------------------------------------------

_DEEP_WORKLOADS = {
    "refs": (make_refs_system, "RefLL", _nested_refll_boundary(DEEP_CROSSINGS)),
    "affine": (make_affine_system, "MiniML", _nested_ml_affi_boundary(DEEP_CROSSINGS)),
    "l3": (make_l3_system, "MiniML", _nested_ml_l3_boundary(DEEP_CROSSINGS)),
}


@pytest.mark.parametrize(
    "workload,backend",
    [
        (workload, backend)
        for workload, (factory, _lang, _src) in _DEEP_WORKLOADS.items()
        for backend in factory().target.backend_names()
    ],
)
def test_deep_crossing_backend_comparison(benchmark, workload, backend):
    """Same compiled deep-crossing program, one timing per registered backend."""
    factory, language, source = _DEEP_WORKLOADS[workload]
    system = factory()
    unit = system.compile_source(language, source)

    result = benchmark(lambda: system.run_compiled(unit.target_code, fuel=RUN_FUEL, backend=backend))
    assert result.ok, f"{workload}/{backend}: {result}"
    benchmark.extra_info["workload"] = workload
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["steps"] = result.steps


# -- pipeline cache ----------------------------------------------------------------


@pytest.mark.parametrize("cached", [True, False], ids=["warm-cache", "cold-cache"])
def test_pipeline_cache_effect(benchmark, cached):
    """Repeated submissions of one crossing-heavy program, with/without cache."""
    system = make_affine_system()
    source = _nested_ml_affi_boundary(CROSSINGS)
    frontend = system.frontend("MiniML")
    frontend.cache_enabled = cached

    def resubmit():
        if not cached:
            frontend.clear_cache()
        return system.run_source("MiniML", source)

    result = benchmark(resubmit)
    assert result.ok
    benchmark.extra_info["cache"] = system.cache_stats()


# -- machine-readable JSON report + regression gate ---------------------------------

JSON_REPORT = "BENCH_boundary_crossing.json"
_JSON_REPEATS = 5


_MIN_MEASUREMENT_SECONDS = 0.005


def _best_of(action, repeats: int = _JSON_REPEATS) -> float:
    """Best-of-``repeats`` per-run time, with sub-5ms runs batched.

    Batching keeps the regression gate stable on noisy CI machines: a single
    deep-crossing run on the fast backends takes tens of microseconds, which
    a scheduler hiccup can easily double.
    """
    start = time.perf_counter()
    action()
    single = time.perf_counter() - start
    batch = max(1, int(_MIN_MEASUREMENT_SECONDS / single) + 1) if single else 1
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(batch):
            action()
        timings.append((time.perf_counter() - start) / batch)
    return min(timings)


def collect_json_report() -> dict:
    """Time every registered backend on the deep-crossing workloads."""
    workloads = {}
    for name, (factory, language, source) in _DEEP_WORKLOADS.items():
        system = factory()
        unit = system.compile_source(language, source)
        backends = system.target.backend_names()
        results = {
            backend: system.run_compiled(unit.target_code, fuel=RUN_FUEL, backend=backend)
            for backend in backends
        }
        for backend, result in results.items():
            assert result.ok, f"{name}/{backend}: {result}"
            assert result.value == results["substitution"].value, f"{name}/{backend}"
        timings = {
            backend: _best_of(
                lambda backend=backend: system.run_compiled(
                    unit.target_code, fuel=RUN_FUEL, backend=backend
                )
            )
            for backend in backends
        }
        substitution_time = timings["substitution"]
        workloads[name] = {
            "language": language,
            "depth": DEEP_CROSSINGS,
            "steps": {backend: results[backend].steps for backend in backends},
            "timings_seconds": timings,
            "speedup_vs_substitution": {
                backend: substitution_time / timings[backend] for backend in backends
            },
            "compiled_vs_cek": timings["cek"] / timings["cek-compiled"],
            "opt_vs_cek": timings["cek"] / timings["cek-opt"],
            "opt_vs_compiled": timings["cek-compiled"] / timings["cek-opt"],
        }
    return {
        "benchmark": "boundary_crossing",
        "fuel": RUN_FUEL,
        "repeats": _JSON_REPEATS,
        "workloads": workloads,
        "glue_preresolution": collect_glue_report(),
    }


def collect_glue_report() -> dict:
    """Convertibility-counter differential: glue pre-resolution on vs off.

    For every deep-crossing workload the program is parsed and typechecked
    once, the relation's counters are reset, and then *compilation alone*
    runs — so ``compile_lookups`` counts exactly the per-crossing dynamic
    relation lookups the compile phase performs.  With pre-resolution on the
    typechecker already captured each boundary's oriented glue closure, so
    the compile phase does zero dynamic lookups and ``preresolved`` counts
    every crossing site instead; with it off, every crossing pays a dynamic
    ``require`` lookup at compile time (the pre-PR behaviour).
    """
    report = {}
    for name, (factory, language, source) in _DEEP_WORKLOADS.items():
        section = {}
        for mode, preresolve in (("on", True), ("off", False)):
            system = factory(preresolve=preresolve)
            frontend = system.frontend(language)
            term = frontend.parse_expr(source)
            frontend.typecheck(term)
            system.convertibility.reset_stats()
            frontend.compile(term)
            stats = system.convertibility.stats()
            section[mode] = {
                "compile_lookups": stats["lookups"],
                "preresolved": stats["preresolved"],
            }
        report[name] = section
    return report


def main(argv) -> int:
    check = "--check" in argv
    output = JSON_REPORT
    if "--output" in argv:
        output = argv[argv.index("--output") + 1]
    report = collect_json_report()
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    failed = []
    opt_improved = []
    for name, workload in sorted(report["workloads"].items()):
        ratios = workload["speedup_vs_substitution"]
        summary = ", ".join(f"{backend} {ratio:.1f}x" for backend, ratio in sorted(ratios.items()))
        print(
            f"{name}: vs substitution: {summary}; compiled vs cek "
            f"{workload['compiled_vs_cek']:.2f}x; opt vs cek {workload['opt_vs_cek']:.2f}x"
        )
        if workload["compiled_vs_cek"] < 1.0:
            failed.append(name)
        if workload["opt_vs_cek"] > workload["compiled_vs_cek"]:
            opt_improved.append(name)
    glue_failed = []
    for name, section in sorted(report["glue_preresolution"].items()):
        on, off = section["on"], section["off"]
        print(
            f"{name}: glue pre-resolution on: {on['compile_lookups']} compile-phase lookups, "
            f"{on['preresolved']} preresolved; off: {off['compile_lookups']} lookups"
        )
        # The pre-resolution contract: the compile phase performs *zero*
        # dynamic relation lookups (every crossing consumes its baked glue
        # closure), while the dynamic baseline pays one lookup per crossing.
        if on["compile_lookups"] != 0 or on["preresolved"] == 0 or off["compile_lookups"] == 0:
            glue_failed.append(name)
    print(f"wrote {output}")
    if check:
        if failed:
            print(
                "REGRESSION: cek-compiled slower than interpreted cek on: " + ", ".join(failed),
                file=sys.stderr,
            )
            return 1
        if not opt_improved:
            print(
                "REGRESSION: cek-opt improves over cek-compiled on no deep-crossing workload",
                file=sys.stderr,
            )
            return 1
        if glue_failed:
            print(
                "REGRESSION: glue pre-resolution counters wrong on: " + ", ".join(glue_failed),
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
