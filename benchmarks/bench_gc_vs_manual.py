"""E14 — the LCVM memory substrate: GC'd vs manual allocation, and the
substitution-machine vs environment-evaluator ablation.

§5's design hinges on both memory disciplines coexisting in one heap.  This
harness measures allocation-heavy workloads under each discipline and the
cost of explicit ``callgc`` collections, plus the interpreter-design ablation
(small-step substitution machine vs the big-step environment evaluator).
"""

import pytest

from repro.lcvm import (
    Alloc,
    BinOp,
    CallGc,
    Deref,
    Free,
    Int,
    Let,
    NewRef,
    Var,
    evaluate,
    run,
    run_cek,
)

CELLS = 30


def _gc_allocation_workload(count: int):
    """Allocate ``count`` GC cells, keep only the last, collect, read it."""
    body = Let("keep", NewRef(Int(0)), Let("_", CallGc(), Deref(Var("keep"))))
    for index in range(count):
        body = Let(f"tmp{index}", NewRef(Int(index)), body)
    return body


def _manual_allocation_workload(count: int):
    """Allocate and immediately free ``count`` manual cells, then return 0."""
    body = Int(0)
    for index in range(count):
        body = Let(
            f"cell{index}",
            Alloc(Int(index)),
            Let("_", Free(Var(f"cell{index}")), body),
        )
    return body


def test_gc_allocation_and_collection(benchmark):
    program = _gc_allocation_workload(CELLS)
    result = benchmark(lambda: run(program, fuel=1_000_000))
    assert result.value == Int(0)
    assert result.heap.reclaimed >= CELLS  # the temporaries were collected
    benchmark.extra_info["steps"] = result.steps
    benchmark.extra_info["reclaimed"] = result.heap.reclaimed


def test_manual_allocation_and_free(benchmark):
    program = _manual_allocation_workload(CELLS)
    result = benchmark(lambda: run(program, fuel=1_000_000))
    assert result.value == Int(0)
    assert len(result.heap) == 0
    benchmark.extra_info["steps"] = result.steps


@pytest.mark.parametrize("engine", ["smallstep", "bigstep", "cek"])
def test_interpreter_ablation(benchmark, engine):
    """Ablation: substitution reference machine vs the environment engines."""
    program = _gc_allocation_workload(CELLS)
    if engine == "smallstep":
        result = benchmark(lambda: run(program, fuel=1_000_000))
        assert result.value == Int(0)
    elif engine == "cek":
        result = benchmark(lambda: run_cek(program, fuel=1_000_000))
        assert result.value == Int(0)
    else:
        result = benchmark(lambda: evaluate(program, fuel=1_000_000))
        assert result.ok


def test_arithmetic_ablation(benchmark):
    """Pure computation (no heap): the evaluators should agree and all scale."""
    expression = Int(1)
    for index in range(200):
        expression = BinOp("+", expression, Int(index))

    def measure():
        small = run(expression, fuel=1_000_000)
        big = evaluate(expression, fuel=1_000_000)
        fast = run_cek(expression, fuel=1_000_000)
        return small, big, fast

    small, big, fast = benchmark(measure)
    assert small.value == Int(sum(range(200)) + 1)
    assert big.value.value == sum(range(200)) + 1
    assert fast.value == small.value
