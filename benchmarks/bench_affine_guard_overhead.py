"""E6 — §4: the runtime cost of dynamic affine guards vs static arrows.

Affi's whole reason for having two arrows (⊸ and ⊸•) is that the dynamic
guard (a reference cell plus a wrapper closure per call) is not free.  This
harness measures chains of applications through each arrow and reports both
wall-clock time and LCVM step counts.
"""

import pytest

from repro.interop_affine import make_system
from repro.lcvm import machine as lcvm_machine

CHAIN = 25


def _chain(lam_keyword: str, depth: int) -> str:
    """Build ``(f (f ... (f 1)))`` where f is an identity of the given arrow."""
    identity = f"({lam_keyword} (a int) a)"
    source = "1"
    for _ in range(depth):
        source = f"({identity} {source})"
    return source


@pytest.fixture(scope="module")
def system():
    return make_system()


@pytest.mark.parametrize("arrow,keyword", [("static", "slam"), ("dynamic", "dlam")])
def test_application_chain(benchmark, system, arrow, keyword):
    unit = system.compile_source("Affi", _chain(keyword, CHAIN))

    result = benchmark(lambda: lcvm_machine.run(unit.target_code, fuel=1_000_000))
    assert result.value is not None
    benchmark.extra_info["lcvm_steps"] = result.steps
    benchmark.extra_info["chain_length"] = CHAIN


def test_guard_overhead_ratio(benchmark, system):
    """Shape claim: dynamic applications cost strictly more steps than static ones."""

    def measure():
        static_unit = system.compile_source("Affi", _chain("slam", CHAIN))
        dynamic_unit = system.compile_source("Affi", _chain("dlam", CHAIN))
        static_steps = lcvm_machine.run(static_unit.target_code, fuel=1_000_000).steps
        dynamic_steps = lcvm_machine.run(dynamic_unit.target_code, fuel=1_000_000).steps
        return static_steps, dynamic_steps

    static_steps, dynamic_steps = benchmark(measure)
    assert dynamic_steps > static_steps
    benchmark.extra_info["static_steps"] = static_steps
    benchmark.extra_info["dynamic_steps"] = dynamic_steps
    benchmark.extra_info["overhead_per_call"] = (dynamic_steps - static_steps) / CHAIN
