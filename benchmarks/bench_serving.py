"""Serving-layer throughput: N concurrent mixed programs, one interleaved loop.

Builds a batch of mixed-workload requests across all three case-study
systems — compiled fast-path requests next to oracle-backed differential
requests, plus a deliberately fuel-starved one — and measures:

* **sequential**: each request driven to completion before the next starts
  (single-program latency × N, the baseline the async driver must not blow
  up), and
* **interleaved**: the whole batch step-sliced round-robin on one asyncio
  event loop by the :class:`~repro.serve.scheduler.Scheduler`.

A second, *oracle-heavy* batch drives deep requests through the resumable
oracle backends (both substitution machines, the iterative big-step
evaluator, the interpreted CEK/segment machines) and gates the
bounded-latency guarantee: no backend may advance more than ``slice_steps``
machine transitions per scheduler turn, so every response must satisfy
``steps ≤ slices × slice_steps`` (within a small tolerance).  A
``BlockingExecution``-style regression — a backend running its whole program
inside its first slice — fails this gate immediately.

A third, *checkpoint* section measures the snapshot machinery: per-backend
snapshot/restore overhead (time and pickled size) for every
snapshot-capable backend in all three systems, and a preempt → resume
differential — a mixed batch stopped at a slice ceiling by
``serve_preempting`` and continued by ``resume`` must land on exactly the
uninterrupted sequential outcomes (results, failures, and total step
counts).  With ``--pool`` it also demonstrates mid-run **migration**: a
batch pinned to a shard whose worker dies mid-run must finish on a
surviving shard from streamed slice-boundary checkpoints, matching the
undisturbed baseline.

With ``--pool`` a further section exercises the multi-process
:class:`~repro.serve.pool.WorkerPool`: the same mixed batch sharded across
worker processes (gated identical to the sequential baseline), plus a
*repeated-program* batch that pins one program to each worker in turn via
per-request affinity keys — the first worker compiles and **publishes** the
artifact to the parent-owned shared store, the second **imports** it instead
of recompiling, and the gate requires at least one such cross-worker
pipeline-cache hit with the publish/hit counters reported in the JSON.

The module is runnable as a script: it writes machine-readable
``BENCH_serving.json`` (batch timings, throughput, interleaving overhead
ratio, per-request accounting, slice-budget audit, pool shard/cache
metrics) so the serving-perf trajectory is tracked across PRs, and with
``--check`` exits non-zero if interleaved results diverge from sequential
results anywhere, if the interleaved batch takes more than ``2×`` the
sequential baseline, if any slice of any backend exceeds the slice budget,
if any snapshot-capable backend failed the snapshot/restore measurement,
if the preempt → resume differential diverges (or preempts nothing), or
(with ``--pool``) if pooled results diverge, no cross-worker cache hit was
recorded, or the crashed-shard batch failed to migrate:

    PYTHONPATH=src python benchmarks/bench_serving.py --check --pool

With ``--chaos`` a further section runs the 12-request mixed batch under a
seeded :class:`~repro.serve.faults.FaultPlan` injecting three distinct
fault kinds (a mid-run worker crash, a stalling worker against a request
deadline, suppressed checkpoint serialization) and gates that every
response either equals the fault-free sequential baseline or is a
*structured* policy response (``deadline_exceeded`` with a resumable
checkpoint, ``rejected_overload``) — no raw exceptions, no lost requests —
plus overload-shedding and checkpoint-store fault subsections:

    PYTHONPATH=src python benchmarks/bench_serving.py --check --pool --chaos
"""

import json
import os
import pickle
import sys
import tempfile
import time
from dataclasses import replace

from repro.serve import (
    CheckpointCorrupt,
    CheckpointStore,
    Fault,
    FaultPlan,
    Request,
    Scheduler,
    WorkerPool,
    make_default_scheduler,
)
from repro.util.workloads import (
    nested_ml_affi_boundary as _nested_ml_affi_boundary,
    nested_ml_l3_boundary as _nested_ml_l3_boundary,
    nested_refll_boundary as _nested_refll_boundary,
)

SLICE_STEPS = 512
REPEATS = 3
DEEP = 12
SHALLOW = 6
#: Oracle-heavy batch: deep enough that every oracle needs many slices at
#: ORACLE_SLICE_STEPS, shallow enough that the quadratic substitution
#: machines stay fast.  (The recursive parsers cap workload depth at ~80.)
ORACLE_DEEP = 40
ORACLE_SLICE_STEPS = 64
#: Headroom on the ``steps ≤ slices × slice_steps`` audit; the guarantee is
#: exact today, the tolerance only keeps the gate from tripping on a future
#: backend whose step accounting is slightly coarser than its slicing.
SLICE_BUDGET_TOLERANCE = 1.05
JSON_REPORT = "BENCH_serving.json"
POOL_WORKERS = 2
#: The checkpoint section pauses executions after one slice this long, so
#: every backend (the shallow-stepping oracles included) is mid-run when
#: its snapshot is taken.
CHECKPOINT_PROBE_STEPS = 8
#: Fuel for the snapshot-overhead probes: ample, the probes pause after one
#: short slice and the restored runs are never driven to completion.
CHECKPOINT_PROBE_FUEL = 1_000_000
#: Preemption ceiling and slice size for the preempt -> resume
#: differential: a budget of ``PREEMPT_MAX_SLICES x PREEMPT_SLICE_STEPS``
#: transitions stops the deep requests mid-run while the small ones finish
#: normally.
PREEMPT_MAX_SLICES = 2
PREEMPT_SLICE_STEPS = 8
#: Chaos section (``--chaos``): a small slice size so the deep requests in
#: the mixed batch run for several slices — injected crashes and stalls land
#: *mid-run*, not after the work is already done.
CHAOS_SLICE_STEPS = 32
CHAOS_SEED = 20260808
#: The injected stall (worker.slow) is far past the victim's deadline, so
#: the deadline verdict is deterministic despite real clocks in the workers.
CHAOS_DEADLINE_SECONDS = 0.05
CHAOS_SLOW_SECONDS = 0.3
#: Overload subsection: admit this many of the 12 mixed requests; the tail
#: must be shed with structured ``rejected_overload`` responses.
CHAOS_MAX_BATCH = 8


def make_requests(deep: int = DEEP, shallow: int = SHALLOW):
    """A mixed batch: 3 systems, 4 backends, 12 requests, one fuel-starved."""
    return [
        Request(language="RefLL", source=_nested_refll_boundary(deep), request_id="refs-deep"),
        Request(language="RefLL", source=_nested_refll_boundary(shallow), request_id="refs-shallow"),
        Request(
            language="RefLL",
            source=_nested_refll_boundary(shallow),
            backend="substitution",
            request_id="refs-oracle",
        ),
        Request(
            language="RefLL", source=_nested_refll_boundary(shallow), backend="cek", request_id="refs-segment"
        ),
        Request(
            language="MiniML",
            system="affine",
            source=_nested_ml_affi_boundary(deep),
            request_id="affine-deep",
        ),
        Request(
            language="MiniML",
            system="affine",
            source=_nested_ml_affi_boundary(shallow),
            backend="substitution",
            request_id="affine-oracle",
        ),
        Request(
            language="MiniML",
            system="affine",
            source=_nested_ml_affi_boundary(shallow),
            backend="bigstep",
            request_id="affine-bigstep",
        ),
        Request(language="Affi", source="(if (boundary bool 7) 1 2)", request_id="affi-small"),
        Request(
            language="MiniML", system="l3", source=_nested_ml_l3_boundary(deep), request_id="l3-deep"
        ),
        Request(
            language="MiniML",
            system="l3",
            source=_nested_ml_l3_boundary(shallow),
            backend="substitution",
            request_id="l3-oracle",
        ),
        Request(
            language="MiniML", system="l3", source="(! (boundary (ref int) (new true)))", request_id="l3-small"
        ),
        Request(
            language="MiniML",
            system="affine",
            source=_nested_ml_affi_boundary(deep),
            fuel=7,
            request_id="affine-starved",
        ),
    ]


def make_oracle_requests(deep: int = ORACLE_DEEP):
    """An oracle-heavy batch: every resumable oracle backend, driven deep."""
    return [
        Request(
            language="RefLL",
            source=_nested_refll_boundary(deep),
            backend="substitution",
            request_id="oracle-refs-substitution",
        ),
        Request(
            language="RefLL",
            source=_nested_refll_boundary(deep),
            backend="cek",
            request_id="oracle-refs-segment",
        ),
        Request(
            language="MiniML",
            system="l3",
            source=_nested_ml_l3_boundary(deep // 2),
            backend="substitution",
            request_id="oracle-l3-substitution",
        ),
        Request(
            language="MiniML",
            system="l3",
            source=_nested_ml_l3_boundary(deep // 2),
            backend="bigstep",
            request_id="oracle-l3-bigstep",
        ),
        Request(
            language="MiniML",
            system="l3",
            source=_nested_ml_l3_boundary(deep // 2),
            backend="cek",
            request_id="oracle-l3-cek",
        ),
        # A compiled fast-path neighbour: its latency must not depend on the
        # deep oracles sharing the loop.
        Request(
            language="RefLL",
            source=_nested_refll_boundary(SHALLOW),
            request_id="oracle-batch-compiled-neighbour",
        ),
    ]


def _slice_budget_violations(responses, slice_steps):
    """Responses whose machines advanced past the per-turn slice budget.

    Each ``step_n`` call may advance at most ``slice_steps`` transitions, so
    ``steps ≤ slices × slice_steps`` must hold for every served response; a
    backend that runs its whole program in its first slice (the old
    ``BlockingExecution`` behaviour) violates it on any deep request.
    """
    violations = []
    for response in responses:
        if response.result is None or response.slices == 0:
            continue
        budget = response.slices * slice_steps * SLICE_BUDGET_TOLERANCE
        if response.result.steps > budget:
            violations.append(
                {
                    "id": response.request.request_id,
                    "backend": response.backend,
                    "steps": response.result.steps,
                    "slices": response.slices,
                    "slice_steps": slice_steps,
                }
            )
    return violations


def _observable(response):
    """The scheduling-independent view of a response (no timings/slices)."""
    result = response.result
    return (
        response.error,
        None if result is None else str(result.value),
        None if result is None else str(result.failure),
        None if result is None else result.steps,
    )


def _best_of(action, repeats: int = REPEATS) -> float:
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        action()
        timings.append(time.perf_counter() - start)
    return min(timings)


def _affinity_for_shard(pool, shard: int, source: str) -> str:
    """A per-request affinity key that places ``source`` on ``shard``."""
    for attempt in range(256):
        key = f"pin-{shard}-{attempt}"
        if pool.shard_of(Request(language="RefLL", source=source, affinity=key)) == shard:
            return key
    raise AssertionError(f"no affinity key found for shard {shard}")


def collect_pool_report() -> dict:
    """The multi-process section: sharded differential + cross-worker cache hits."""
    requests = make_requests()
    with WorkerPool(workers=POOL_WORKERS, slice_steps=SLICE_STEPS) as pool:
        sequential = pool.run_sequential(requests)
        pooled = pool.run_batch(requests)
        mismatches = [
            request.request_id
            for request, seq, shard in zip(requests, sequential, pooled)
            if _observable(seq) != _observable(shard)
        ]
        pool_seconds = _best_of(lambda: pool.run_batch(requests))
        sequential_seconds = _best_of(lambda: pool.run_sequential(requests))
        mixed_stats = pool.cache_stats()
        shard_load = {}
        for response in pooled:
            shard_load[str(response.shard)] = shard_load.get(str(response.shard), 0) + 1

    # Repeated-program batch: the same hot program deliberately spread across
    # every worker via affinity keys.  Worker 0 compiles and publishes; every
    # other worker must import the published artifact instead of recompiling —
    # the cross-worker pipeline-cache hit this benchmark gates on.
    hot_source = _nested_refll_boundary(DEEP)
    with WorkerPool(workers=POOL_WORKERS, slice_steps=SLICE_STEPS) as pool:
        rounds = []
        for shard in range(POOL_WORKERS):
            key = _affinity_for_shard(pool, shard, hot_source)
            batch = [
                Request(language="RefLL", source=hot_source, affinity=key, request_id=f"hot-{shard}-{copy}")
                for copy in range(3)
            ]
            rounds.append(pool.run_batch(batch))
        repeated_stats = pool.cache_stats()
        repeated_per_request = [
            {
                "id": response.request.request_id,
                "shard": response.shard,
                "ok": response.ok,
                "cache_hit": response.cache_hit,
                "shared_cache_hit": response.shared_cache_hit,
                "published": response.published,
                "coalesced": response.coalesced,
            }
            for responses in rounds
            for response in responses
        ]
        repeated_mismatches = [
            response.request.request_id for responses in rounds for response in responses if not response.ok
        ]

    return {
        "workers": POOL_WORKERS,
        "results_match": not mismatches,
        "mismatches": mismatches,
        "pool_seconds": pool_seconds,
        "sequential_seconds": sequential_seconds,
        "throughput_rps": len(requests) / pool_seconds,
        "shard_load": shard_load,
        "mixed_batch_cache": mixed_stats,
        "repeated_program_cache": repeated_stats,
        "repeated_program_ok": not repeated_mismatches,
        "repeated_program_per_request": repeated_per_request,
        "cross_worker_cache_hits": repeated_stats["cross_worker_hits"],
        "publishes": repeated_stats["publishes"],
    }


def _exit_hard(code, fuel: int = 100_000):
    os._exit(13)  # simulate a segfaulting backend: no exception, no cleanup


def _crashing_scheduler_factory(slice_steps: int) -> Scheduler:
    """Default scheduler plus a 'crash' backend that kills its worker."""
    scheduler = make_default_scheduler(slice_steps=slice_steps)
    scheduler.systems["refs"].target.register_backend("crash", _exit_hard)
    return scheduler


def collect_migration_report() -> dict:
    """Mid-run migration: a crashed shard's in-flight requests finish elsewhere.

    Two deep requests are pinned (by affinity) to the same shard as a
    request whose backend kills the worker process mid-batch.  The parent
    has been receiving their slice-boundary checkpoints all along, so both
    must *migrate*: resume on a surviving shard and land on exactly the
    outcomes of an undisturbed run.
    """
    baseline_scheduler = make_default_scheduler(slice_steps=SLICE_STEPS)
    victims = [
        Request(language="RefLL", source=_nested_refll_boundary(DEEP), request_id="victim-deep"),
        Request(
            language="RefLL",
            source=_nested_refll_boundary(DEEP - 1),
            backend="substitution",
            request_id="victim-oracle",
        ),
    ]
    baseline = {
        response.request.request_id: _observable(response)
        for response in baseline_scheduler.serve_sequential(victims)
    }

    with WorkerPool(
        workers=POOL_WORKERS, slice_steps=SLICE_STEPS, scheduler_factory=_crashing_scheduler_factory
    ) as pool:
        crash_key = _affinity_for_shard(pool, 0, _nested_refll_boundary(DEEP))
        batch = [
            # retry_budget=0: the crasher itself must keep the whole-shard
            # failure (with budget it would crash its redispatch target too).
            Request(
                language="RefLL",
                source="(+ 1 2)",
                backend="crash",
                affinity=crash_key,
                request_id="boom",
                retry_budget=0,
            )
        ] + [
            Request(
                language=victim.language,
                source=victim.source,
                backend=victim.backend,
                affinity=crash_key,
                request_id=victim.request_id,
            )
            for victim in victims
        ]
        start = time.perf_counter()
        responses = {response.request.request_id: response for response in pool.run_batch(batch)}
        seconds = time.perf_counter() - start
        stats = pool.cache_stats()

    migrated = [
        response
        for response in responses.values()
        if response.migrated_from is not None and response.resumed
    ]
    mismatches = [
        request_id
        for request_id, expected in baseline.items()
        if _observable(responses[request_id]) != expected
    ]
    ok = (
        not mismatches
        and len(migrated) == len(victims)
        and stats["migrations"] >= 1
        and responses["boom"].error is not None
    )
    return {
        "ok": ok,
        "victims": len(victims),
        "migrated": len(migrated),
        "migrations": stats["migrations"],
        "worker_crashes": stats["worker_crashes"],
        "mismatches": mismatches,
        "seconds": seconds,
        "per_request": [
            {
                "id": response.request.request_id,
                "ok": response.ok,
                "error": response.error,
                "shard": response.shard,
                "migrated_from": response.migrated_from,
                "resumed": response.resumed,
            }
            for response in responses.values()
        ],
    }


def collect_chaos_report() -> dict:
    """The fault-injection gate: the mixed batch under a seeded FaultPlan.

    Three distinct fault kinds are injected into the 12-request mixed pool
    batch, each aimed structurally (shard + request id + slice) so the same
    faults fire at the same boundaries every run:

    * ``worker.crash`` — the shard serving ``refs-deep`` dies when that
      request finishes its second slice; every in-flight request on the
      shard must recover (migration from streamed checkpoints, or
      redispatch) and land on the fault-free baseline;
    * ``checkpoint.pickle`` — ``affine-deep``'s checkpoints (pinned to the
      crashing shard) are suppressed, so *its* recovery must come from the
      from-scratch redispatch path;
    * ``worker.slow`` — ``l3-deep`` (pinned to the surviving shard, with a
      deadline) stalls past its budget and must come back as a structured
      ``deadline_exceeded`` response carrying a resumable checkpoint —
      which, granted more time, completes identical to the baseline.

    The gate: every response either equals the fault-free sequential
    baseline or is a structured policy response — no raw exceptions, no
    lost requests — with the bounded-latency invariant holding on the
    *cumulative* (retry-inclusive) accounting.  Two subsections exercise
    the remaining fault kinds and policies: admission overload (the batch
    tail shed deterministically) and checkpoint-store faults
    (``store.write``/``restore.tamper``/a torn file on disk).
    """
    baseline_scheduler = make_default_scheduler(slice_steps=CHAOS_SLICE_STEPS)
    requests = make_requests()
    baseline = {
        response.request.request_id: _observable(response)
        for response in baseline_scheduler.serve_sequential(requests)
    }

    # Aim the faults: the crash follows refs-deep's natural placement; the
    # deadline victim is pinned *off* that shard (its expiry must not race
    # the crash) and the checkpoint-suppressed victim *onto* it.
    probe = WorkerPool(workers=POOL_WORKERS, slice_steps=CHAOS_SLICE_STEPS)
    try:
        by_id = {request.request_id: request for request in requests}
        crash_shard = probe.shard_of(by_id["refs-deep"])
        other_shard = (crash_shard + 1) % POOL_WORKERS
        slow_key = _affinity_for_shard(probe, other_shard, by_id["l3-deep"].source)
        suppress_key = _affinity_for_shard(probe, crash_shard, by_id["affine-deep"].source)
    finally:
        probe.close()

    chaos_batch = []
    for request in requests:
        if request.request_id == "l3-deep":
            request = replace(
                request, affinity=slow_key, deadline_seconds=CHAOS_DEADLINE_SECONDS
            )
        elif request.request_id == "affine-deep":
            request = replace(request, affinity=suppress_key)
        chaos_batch.append(request)

    plan = FaultPlan(
        seed=CHAOS_SEED,
        faults=(
            Fault(
                site="worker.crash",
                request_id="refs-deep",
                shard=crash_shard,
                at_slice=2,
                times=1,
            ),
            Fault(
                site="worker.slow",
                request_id="l3-deep",
                shard=other_shard,
                at_slice=1,
                delay_seconds=CHAOS_SLOW_SECONDS,
                times=1,
            ),
            Fault(site="checkpoint.pickle", request_id="affine-deep", shard=crash_shard, times=None),
        ),
    )
    with WorkerPool(
        workers=POOL_WORKERS, slice_steps=CHAOS_SLICE_STEPS, fault_plan=plan
    ) as pool:
        start = time.perf_counter()
        responses = pool.run_batch(chaos_batch)
        seconds = time.perf_counter() - start
        stats = pool.cache_stats()
        health = pool.health_stats()

    served = {response.request.request_id: response for response in responses}
    policy_stopped = sorted(
        request_id for request_id, response in served.items() if response.policy_stopped
    )
    mismatches = [
        request_id
        for request_id, expected in baseline.items()
        if not served[request_id].policy_stopped and _observable(served[request_id]) != expected
    ]
    deadline_rows = [response for response in responses if response.deadline_exceeded]
    deadline_has_checkpoint = bool(deadline_rows) and all(
        response.checkpoint is not None for response in deadline_rows
    )
    # Granting the expired request more time = resuming its checkpoint: the
    # continuation (without the injected stall) must land on the baseline.
    deadline_retry_matches = False
    if deadline_has_checkpoint:
        retried = make_default_scheduler(slice_steps=CHAOS_SLICE_STEPS).resume(
            [response.checkpoint for response in deadline_rows]
        )
        deadline_retry_matches = all(
            _observable(response) == baseline[response.request.request_id]
            for response in retried
        )
    refs_deep = served["refs-deep"]
    affine_deep = served["affine-deep"]
    slice_violations = _slice_budget_violations(responses, CHAOS_SLICE_STEPS)

    ok = (
        not mismatches
        and policy_stopped == ["l3-deep"]
        and deadline_has_checkpoint
        and deadline_retry_matches
        and stats["worker_crashes"] == 1
        and stats["migrations"] >= 1
        and refs_deep.resumed
        and refs_deep.migrated_from == crash_shard
        and refs_deep.attempts == 2
        and stats["redispatches"] >= 1
        and not affine_deep.resumed
        and affine_deep.attempts == 2
        and not slice_violations
    )
    chaos = {
        "seed": CHAOS_SEED,
        "slice_steps": CHAOS_SLICE_STEPS,
        "fault_kinds": ["worker.crash", "worker.slow", "checkpoint.pickle"],
        "crash_shard": crash_shard,
        "seconds": seconds,
        "results_match": not mismatches,
        "mismatches": mismatches,
        "policy_stopped": policy_stopped,
        "deadline_exceeded": [response.request.request_id for response in deadline_rows],
        "deadline_has_checkpoint": deadline_has_checkpoint,
        "deadline_retry_matches_baseline": deadline_retry_matches,
        "worker_crashes": stats["worker_crashes"],
        "migrations": stats["migrations"],
        "redispatches": stats["redispatches"],
        "retries": stats["retries"],
        "slice_budget_ok": not slice_violations,
        "slice_budget_violations": slice_violations,
        "breaker_states": {
            shard: row["state"] for shard, row in health["shards"].items()
        },
        "per_request": [
            {
                "id": response.request.request_id,
                "ok": response.ok,
                "error": response.error,
                "shard": response.shard,
                "attempts": response.attempts,
                "resumed": response.resumed,
                "migrated_from": response.migrated_from,
                "deadline_exceeded": response.deadline_exceeded,
                "rejected_overload": response.rejected_overload,
            }
            for response in responses
        ],
        "ok": ok,
    }
    chaos["overload"] = _collect_overload_report(requests, baseline)
    chaos["store_faults"] = _collect_store_fault_report()
    return chaos


def _collect_overload_report(requests, baseline) -> dict:
    """Admission overload: the deterministic tail is shed, the head served."""
    with WorkerPool(
        workers=POOL_WORKERS, slice_steps=CHAOS_SLICE_STEPS, max_batch=CHAOS_MAX_BATCH
    ) as pool:
        responses = pool.run_batch(requests)
        shed = pool.cache_stats()["shed"]
    head, tail = responses[:CHAOS_MAX_BATCH], responses[CHAOS_MAX_BATCH:]
    head_mismatches = [
        response.request.request_id
        for response in head
        if _observable(response) != baseline[response.request.request_id]
    ]
    tail_ok = all(
        response.rejected_overload and response.result is None and response.error is None
        for response in tail
    )
    return {
        "max_batch": CHAOS_MAX_BATCH,
        "admitted": len(head),
        "shed": shed,
        "tail_rejected_structurally": tail_ok,
        "head_mismatches": head_mismatches,
        "ok": tail_ok and not head_mismatches and shed == len(tail),
    }


def _collect_store_fault_report() -> dict:
    """Checkpoint-store faults: write failure, tampered read, a torn file."""
    scheduler = make_default_scheduler(slice_steps=CHAOS_SLICE_STEPS)
    paused = scheduler.serve_preempting(
        [Request(language="RefLL", source=_nested_refll_boundary(DEEP), request_id="durable")],
        max_slices=1,
    )[0]
    baseline = _observable(
        scheduler.serve_sequential(
            [Request(language="RefLL", source=_nested_refll_boundary(DEEP))]
        )[0]
    )
    directory = tempfile.mkdtemp(prefix="chaos-store-")
    plan = FaultPlan(
        seed=CHAOS_SEED,
        faults=(
            Fault(site="store.write", times=1),
            Fault(site="restore.tamper", times=1),
        ),
    )
    store = CheckpointStore(directory, fault_plan=plan)
    write_failed_structurally = False
    try:
        store.save(paused.checkpoint)
    except OSError:
        write_failed_structurally = True  # the injected disk failure
    path = store.save(paused.checkpoint)  # the fault is spent: this one lands
    tamper_detected = False
    try:
        store.load(path)
    except CheckpointCorrupt:
        tamper_detected = True  # the injected torn read, structurally reported
    clean_load_ok = store.load(path).request.request_id == "durable"
    with open(os.path.join(directory, "torn.ckpt"), "wb") as handle:
        handle.write(b"half a pickl")  # a write the process never finished
    responses = make_default_scheduler(slice_steps=CHAOS_SLICE_STEPS).resume_stored(store)
    finished = [r for r in responses if r.error is None and r.result is not None]
    corrupt_reported = [r for r in responses if r.error is not None and "torn.ckpt" in r.error]
    resumed_matches = len(finished) == 1 and _observable(finished[0]) == baseline
    consumed = path not in store.paths()
    swept = store.gc(max_age_seconds=0.0)  # age out the torn leftover
    ok = (
        write_failed_structurally
        and tamper_detected
        and clean_load_ok
        and resumed_matches
        and bool(corrupt_reported)
        and consumed
        and not store.paths()
    )
    return {
        "fault_kinds": ["store.write", "restore.tamper"],
        "fired": plan.fired(),
        "write_failed_structurally": write_failed_structurally,
        "tamper_detected": tamper_detected,
        "clean_load_ok": clean_load_ok,
        "resumed_matches_baseline": resumed_matches,
        "corrupt_file_reported": bool(corrupt_reported),
        "consumed_after_resume": consumed,
        "gc_swept": swept,
        "ok": ok,
    }


def collect_checkpoint_report() -> dict:
    """The snapshot section: per-backend overhead plus the preempt -> resume gate."""
    scheduler = make_default_scheduler(slice_steps=SLICE_STEPS)

    # Per-backend snapshot/restore overhead: pause every snapshot-capable
    # backend mid-run, then time reify -> pickle -> restore round trips.
    workloads = {
        "refs": ("RefLL", _nested_refll_boundary(ORACLE_DEEP)),
        "affine": ("MiniML", _nested_ml_affi_boundary(ORACLE_DEEP)),
        "l3": ("MiniML", _nested_ml_l3_boundary(ORACLE_DEEP // 2)),
    }
    overhead = []
    expected_backends = 0
    for system_name, (language, source) in sorted(workloads.items()):
        system = scheduler.systems[system_name]
        code = system.compile_source(language, source).target_code
        expected_backends += len(system.target.restores)
        for backend in sorted(system.target.restores):
            probe = system.start_compiled(code, fuel=CHECKPOINT_PROBE_FUEL, backend=backend)
            if probe.step_n(CHECKPOINT_PROBE_STEPS) is not None:
                continue  # finished in one probe slice: nothing mid-run to measure
            snapshot_seconds = _best_of(lambda: probe.snapshot())
            payload = pickle.dumps(probe.snapshot())
            restore_seconds = _best_of(
                lambda: system.restore_execution(pickle.loads(payload))
            )
            overhead.append(
                {
                    "system": system_name,
                    "backend": backend,
                    "snapshot_ms": snapshot_seconds * 1e3,
                    "restore_ms": restore_seconds * 1e3,
                    "snapshot_bytes": len(payload),
                }
            )

    # Preempt -> resume differential: stop the mixed batch at a slice
    # ceiling, continue the stopped requests from their checkpoints, and
    # require the combined outcomes to equal the uninterrupted baseline.
    requests = make_requests()
    baseline = {
        response.request.request_id: _observable(response)
        for response in scheduler.serve_sequential(requests)
    }
    preempt_scheduler = make_default_scheduler(slice_steps=PREEMPT_SLICE_STEPS)
    start = time.perf_counter()
    served = preempt_scheduler.serve_preempting(make_requests(), max_slices=PREEMPT_MAX_SLICES)
    preempted = [response for response in served if response.preempted]
    resumed = (
        preempt_scheduler.resume([response.checkpoint for response in preempted])
        if preempted
        else []
    )
    preempt_resume_seconds = time.perf_counter() - start
    combined = {
        response.request.request_id: response for response in served if not response.preempted
    }
    combined.update({response.request.request_id: response for response in resumed})
    preempt_mismatches = [
        request_id
        for request_id, expected in baseline.items()
        if _observable(combined[request_id]) != expected
    ]

    return {
        "snapshot_restore": overhead,
        "snapshot_restore_ok": len(overhead) == expected_backends,
        "snapshot_backends_expected": expected_backends,
        "preempt_max_slices": PREEMPT_MAX_SLICES,
        "preempt_slice_steps": PREEMPT_SLICE_STEPS,
        "preempted": len(preempted),
        "preempt_resume_seconds": preempt_resume_seconds,
        "preempt_resume_ok": bool(preempted) and not preempt_mismatches,
        "preempt_mismatches": preempt_mismatches,
    }


def collect_json_report() -> dict:
    scheduler = make_default_scheduler(slice_steps=SLICE_STEPS)
    requests = make_requests()
    scheduler.warm_cache(requests)

    # One untimed pass per mode settles the machine-code memos, then compare
    # outcomes: interleaving must be observably invisible.
    sequential = scheduler.serve_sequential(requests)
    interleaved = scheduler.serve(requests)
    mismatches = [
        request.request_id
        for request, seq, inter in zip(requests, sequential, interleaved)
        if _observable(seq) != _observable(inter)
    ]

    sequential_seconds = _best_of(lambda: scheduler.serve_sequential(requests))
    interleaved_seconds = _best_of(lambda: scheduler.serve(requests))

    # Oracle-heavy batch at a small slice budget: every oracle must advance
    # in bounded turns, and interleaving must stay observably invisible.
    oracle_scheduler = make_default_scheduler(slice_steps=ORACLE_SLICE_STEPS)
    oracle_requests = make_oracle_requests()
    oracle_sequential = oracle_scheduler.serve_sequential(oracle_requests)
    oracle_interleaved = oracle_scheduler.serve(oracle_requests)
    oracle_mismatches = [
        request.request_id
        for request, seq, inter in zip(oracle_requests, oracle_sequential, oracle_interleaved)
        if _observable(seq) != _observable(inter)
    ]
    slice_violations = _slice_budget_violations(interleaved, SLICE_STEPS)
    slice_violations += _slice_budget_violations(oracle_interleaved, ORACLE_SLICE_STEPS)
    oracle_seconds = _best_of(lambda: oracle_scheduler.serve(oracle_requests))

    return {
        "benchmark": "serving",
        "requests": len(requests),
        "slice_steps": SLICE_STEPS,
        "repeats": REPEATS,
        "sequential_seconds": sequential_seconds,
        "interleaved_seconds": interleaved_seconds,
        "interleaved_vs_sequential": interleaved_seconds / sequential_seconds,
        "throughput_rps": len(requests) / interleaved_seconds,
        "sequential_throughput_rps": len(requests) / sequential_seconds,
        "results_match": not mismatches,
        "mismatches": mismatches,
        "oracle_requests": len(oracle_requests),
        "oracle_slice_steps": ORACLE_SLICE_STEPS,
        "oracle_interleaved_seconds": oracle_seconds,
        "oracle_throughput_rps": len(oracle_requests) / oracle_seconds,
        "oracle_results_match": not oracle_mismatches,
        "oracle_mismatches": oracle_mismatches,
        "slice_budget_tolerance": SLICE_BUDGET_TOLERANCE,
        "slice_budget_ok": not slice_violations,
        "slice_budget_violations": slice_violations,
        "oracle_per_request": [
            {
                "id": response.request.request_id,
                "backend": response.backend,
                "ok": response.ok,
                "steps": response.steps,
                "slices": response.slices,
            }
            for response in oracle_interleaved
        ],
        "per_request": [
            {
                "id": response.request.request_id,
                "system": response.system,
                "backend": response.backend,
                "fuel": response.request.fuel,
                "ok": response.ok,
                "failure": None if response.result is None else str(response.result.failure),
                "steps": response.steps,
                "slices": response.slices,
                "cache_hit": response.cache_hit,
            }
            for response in interleaved
        ],
    }


# -- pytest smoke entry (collected by the CI benchmark pass) -------------------


def test_interleaved_matches_sequential():
    """Interleaving a small mixed batch is observably identical to sequential."""
    scheduler = make_default_scheduler(slice_steps=64)
    requests = make_requests(deep=5, shallow=3)
    sequential = scheduler.serve_sequential(requests)
    interleaved = scheduler.serve(requests)
    assert [_observable(r) for r in interleaved] == [_observable(r) for r in sequential]
    assert sum(1 for r in interleaved if r.ok) == len(requests) - 1  # only the starved one fails
    starved = next(r for r in interleaved if r.request.request_id == "affine-starved")
    assert str(starved.result.failure) == "out_of_fuel"
    assert not _slice_budget_violations(interleaved, 64)


def test_oracle_batch_respects_the_slice_budget():
    """Every oracle backend advances in bounded slices, matching sequential."""
    scheduler = make_default_scheduler(slice_steps=32)
    requests = make_oracle_requests(deep=8)
    sequential = scheduler.serve_sequential(requests)
    interleaved = scheduler.serve(requests)
    assert [_observable(r) for r in interleaved] == [_observable(r) for r in sequential]
    assert all(r.ok for r in interleaved)
    assert not _slice_budget_violations(interleaved, 32)
    deep_oracles = [r for r in interleaved if r.request.backend is not None and r.steps > 32]
    assert deep_oracles and all(r.slices > 1 for r in deep_oracles)


def main(argv) -> int:
    check = "--check" in argv
    with_pool = "--pool" in argv
    with_chaos = "--chaos" in argv
    output = JSON_REPORT
    if "--output" in argv:
        output = argv[argv.index("--output") + 1]
    report = collect_json_report()
    report["checkpoint"] = collect_checkpoint_report()
    if with_pool:
        report["pool"] = collect_pool_report()
        report["checkpoint"]["migration"] = collect_migration_report()
    if with_chaos:
        report["chaos"] = collect_chaos_report()
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    ratio = report["interleaved_vs_sequential"]
    print(
        f"{report['requests']} mixed requests: sequential {report['sequential_seconds'] * 1e3:.1f}ms, "
        f"interleaved {report['interleaved_seconds'] * 1e3:.1f}ms "
        f"({report['throughput_rps']:.0f} req/s, overhead ratio {ratio:.2f}x)"
    )
    if with_pool:
        pool_report = report["pool"]
        cache = pool_report["repeated_program_cache"]
        print(
            f"pool ({pool_report['workers']} workers): batch {pool_report['pool_seconds'] * 1e3:.1f}ms "
            f"({pool_report['throughput_rps']:.0f} req/s), shard load {pool_report['shard_load']}, "
            f"shared cache: {cache['publishes']} published, {cache['hits']} hits "
            f"({cache['cross_worker_hits']} cross-worker)"
        )
    checkpoint_report = report["checkpoint"]
    worst = max(
        checkpoint_report["snapshot_restore"],
        key=lambda row: row["snapshot_ms"] + row["restore_ms"],
        default=None,
    )
    print(
        f"checkpoint: {len(checkpoint_report['snapshot_restore'])} backends snapshot+restore"
        + (
            f" (worst {worst['system']}/{worst['backend']}: "
            f"{worst['snapshot_ms']:.2f}ms reify, {worst['restore_ms']:.2f}ms restore, "
            f"{worst['snapshot_bytes']} bytes)"
            if worst
            else ""
        )
        + f"; {checkpoint_report['preempted']} preempted and resumed in "
        f"{checkpoint_report['preempt_resume_seconds'] * 1e3:.1f}ms"
    )
    if with_pool:
        migration = checkpoint_report["migration"]
        print(
            f"migration: {migration['migrated']}/{migration['victims']} in-flight requests "
            f"migrated off the crashed shard in {migration['seconds'] * 1e3:.1f}ms "
            f"({migration['migrations']} migration(s), {migration['worker_crashes']} crash(es))"
        )
    if with_chaos:
        chaos = report["chaos"]
        print(
            f"chaos (seed {chaos['seed']}): {len(chaos['fault_kinds'])} fault kinds in "
            f"{chaos['seconds'] * 1e3:.1f}ms -- {chaos['worker_crashes']} crash(es), "
            f"{chaos['migrations']} migration(s), {chaos['redispatches']} redispatch(es), "
            f"deadline_exceeded={chaos['deadline_exceeded']}, "
            f"overload shed {chaos['overload']['shed']}, "
            f"store faults fired {chaos['store_faults']['fired']}"
        )
    print(f"wrote {output}")

    failed = False
    if report["mismatches"]:
        print(
            "MISMATCH: interleaved results diverge from sequential on: "
            + ", ".join(report["mismatches"]),
            file=sys.stderr,
        )
        failed = True
    if report["oracle_mismatches"]:
        print(
            "MISMATCH: oracle-heavy interleaved results diverge from sequential on: "
            + ", ".join(report["oracle_mismatches"]),
            file=sys.stderr,
        )
        failed = True
    if not report["slice_budget_ok"]:
        print(
            "REGRESSION: backends exceeded the per-turn slice budget "
            f"(steps > slices x slice_steps x {SLICE_BUDGET_TOLERANCE}): "
            + ", ".join(
                f"{v['id']} ({v['backend']}: {v['steps']} steps in {v['slices']} slices of {v['slice_steps']})"
                for v in report["slice_budget_violations"]
            ),
            file=sys.stderr,
        )
        failed = True
    if ratio > 2.0:
        print(
            f"REGRESSION: interleaved batch took {ratio:.2f}x the sequential baseline (limit 2.0x)",
            file=sys.stderr,
        )
        failed = True
    if not checkpoint_report["snapshot_restore_ok"]:
        print(
            "REGRESSION: snapshot/restore measured only "
            f"{len(checkpoint_report['snapshot_restore'])} of "
            f"{checkpoint_report['snapshot_backends_expected']} snapshot-capable backends",
            file=sys.stderr,
        )
        failed = True
    if not checkpoint_report["preempt_resume_ok"]:
        print(
            "REGRESSION: preempt -> resume diverged from the sequential baseline "
            f"(preempted={checkpoint_report['preempted']}, mismatches: "
            + ", ".join(checkpoint_report["preempt_mismatches"])
            + ")",
            file=sys.stderr,
        )
        failed = True
    if with_pool:
        migration = checkpoint_report["migration"]
        if not migration["ok"]:
            print(
                "REGRESSION: crashed-shard batch failed to migrate "
                f"(migrated={migration['migrated']}/{migration['victims']}, "
                f"migrations={migration['migrations']}, mismatches: "
                + ", ".join(migration["mismatches"])
                + ")",
                file=sys.stderr,
            )
            failed = True
        pool_report = report["pool"]
        if pool_report["mismatches"]:
            print(
                "MISMATCH: pooled results diverge from sequential on: "
                + ", ".join(pool_report["mismatches"]),
                file=sys.stderr,
            )
            failed = True
        if not pool_report["repeated_program_ok"]:
            print("REGRESSION: repeated-program pool batch had failing requests", file=sys.stderr)
            failed = True
        if pool_report["cross_worker_cache_hits"] < 1 or pool_report["publishes"] < 1:
            print(
                "REGRESSION: the repeated-program batch recorded no cross-worker "
                f"pipeline-cache hit (publishes={pool_report['publishes']}, "
                f"cross_worker_hits={pool_report['cross_worker_cache_hits']})",
                file=sys.stderr,
            )
            failed = True
    if with_chaos:
        chaos = report["chaos"]
        if not chaos["ok"]:
            print(
                "REGRESSION: the fault-injected batch diverged from the fault-free "
                f"baseline (mismatches: {', '.join(chaos['mismatches']) or 'none'}; "
                f"policy_stopped={chaos['policy_stopped']}, "
                f"migrations={chaos['migrations']}, redispatches={chaos['redispatches']}, "
                f"deadline_has_checkpoint={chaos['deadline_has_checkpoint']}, "
                f"deadline_retry_matches_baseline={chaos['deadline_retry_matches_baseline']}, "
                f"slice_budget_ok={chaos['slice_budget_ok']})",
                file=sys.stderr,
            )
            failed = True
        if not chaos["overload"]["ok"]:
            print(
                "REGRESSION: overload shedding was not structural/deterministic "
                f"(shed={chaos['overload']['shed']}, "
                f"tail_rejected_structurally={chaos['overload']['tail_rejected_structurally']}, "
                f"head_mismatches: {', '.join(chaos['overload']['head_mismatches']) or 'none'})",
                file=sys.stderr,
            )
            failed = True
        if not chaos["store_faults"]["ok"]:
            print(
                "REGRESSION: checkpoint-store faults were not handled structurally: "
                + json.dumps(chaos["store_faults"]),
                file=sys.stderr,
            )
            failed = True
    return 1 if (check and failed) else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
