"""Serving-layer throughput: N concurrent mixed programs, one interleaved loop.

Builds a batch of mixed-workload requests across all three case-study
systems — compiled fast-path requests next to oracle-backed differential
requests, plus a deliberately fuel-starved one — and measures:

* **sequential**: each request driven to completion before the next starts
  (single-program latency × N, the baseline the async driver must not blow
  up), and
* **interleaved**: the whole batch step-sliced round-robin on one asyncio
  event loop by the :class:`~repro.serve.scheduler.Scheduler`.

A second, *oracle-heavy* batch drives deep requests through the resumable
oracle backends (both substitution machines, the iterative big-step
evaluator, the interpreted CEK/segment machines) and gates the
bounded-latency guarantee: no backend may advance more than ``slice_steps``
machine transitions per scheduler turn, so every response must satisfy
``steps ≤ slices × slice_steps`` (within a small tolerance).  A
``BlockingExecution``-style regression — a backend running its whole program
inside its first slice — fails this gate immediately.

A third, *checkpoint* section measures the snapshot machinery: per-backend
snapshot/restore overhead (time and pickled size) for every
snapshot-capable backend in all three systems, and a preempt → resume
differential — a mixed batch stopped at a slice ceiling by
``serve_preempting`` and continued by ``resume`` must land on exactly the
uninterrupted sequential outcomes (results, failures, and total step
counts).  With ``--pool`` it also demonstrates mid-run **migration**: a
batch pinned to a shard whose worker dies mid-run must finish on a
surviving shard from streamed slice-boundary checkpoints, matching the
undisturbed baseline.

With ``--pool`` a further section exercises the multi-process
:class:`~repro.serve.pool.WorkerPool`: the same mixed batch sharded across
worker processes (gated identical to the sequential baseline), plus a
*repeated-program* batch that pins one program to each worker in turn via
per-request affinity keys — the first worker compiles and **publishes** the
artifact to the parent-owned shared store, the second **imports** it instead
of recompiling, and the gate requires at least one such cross-worker
pipeline-cache hit with the publish/hit counters reported in the JSON.

The module is runnable as a script: it writes machine-readable
``BENCH_serving.json`` (batch timings, throughput, interleaving overhead
ratio, per-request accounting, slice-budget audit, pool shard/cache
metrics) so the serving-perf trajectory is tracked across PRs, and with
``--check`` exits non-zero if interleaved results diverge from sequential
results anywhere, if the interleaved batch takes more than ``2×`` the
sequential baseline, if any slice of any backend exceeds the slice budget,
if any snapshot-capable backend failed the snapshot/restore measurement,
if the preempt → resume differential diverges (or preempts nothing), or
(with ``--pool``) if pooled results diverge, no cross-worker cache hit was
recorded, or the crashed-shard batch failed to migrate:

    PYTHONPATH=src python benchmarks/bench_serving.py --check --pool

With ``--chaos`` a further section runs the 12-request mixed batch under a
seeded :class:`~repro.serve.faults.FaultPlan` injecting three distinct
fault kinds (a mid-run worker crash, a stalling worker against a request
deadline, suppressed checkpoint serialization) and gates that every
response either equals the fault-free sequential baseline or is a
*structured* policy response (``deadline_exceeded`` with a resumable
checkpoint, ``rejected_overload``) — no raw exceptions, no lost requests —
plus overload-shedding and checkpoint-store fault subsections:

    PYTHONPATH=src python benchmarks/bench_serving.py --check --pool --chaos

With ``--net`` a network-tier section serves the same mixed batch through a
:class:`~repro.serve.net.NetRouter` fronting TCP worker endpoints (gated
identical to the sequential baseline), probes elastic membership — a third
endpoint joins and only a bounded fraction of placements may move, all onto
the joiner, which must warm from the shared store instead of recompiling —
and gates *rebalance under skew*: a hot-program batch on three endpoints
must land a strictly smaller max/min shard-load imbalance under top-2
load-aware dispatch than under the old static sha256-modulo placement.
Combined with ``--chaos`` it also injects connection drops (recovered by
checkpoint migration onto the surviving endpoint) and slow links (converted
into structured drops by the per-attempt frame deadline):

    PYTHONPATH=src python benchmarks/bench_serving.py --check --pool --net
    PYTHONPATH=src python benchmarks/bench_serving.py --check --net --chaos

With ``--qos`` a multi-tenant load section drives a *generated* mixed-tenant
batch (the differential fuzzer's seeded well-typed programs plus the
promoted legacy corpus entries, identical workload mix per priority class)
through the weighted driver at a small slice size and reports p50/p99
latency per priority class.  The gate requires high-priority p99 strictly
below best-effort p99 under contention, identical results to the sequential
baseline (weights shape latency, never outcomes), and the slice budget
intact under weighted scheduling:

    PYTHONPATH=src python benchmarks/bench_serving.py --check --qos
"""

import json
import math
import os
import pickle
import sys
import tempfile
import time
from dataclasses import replace

from repro.serve import (
    PRIORITY_WEIGHTS,
    CheckpointCorrupt,
    CheckpointStore,
    DispatchPolicy,
    Fault,
    FaultPlan,
    HashRing,
    NetRouter,
    NetWorker,
    Request,
    Scheduler,
    WorkerPool,
    make_default_scheduler,
    static_shard_of,
)
from repro.util.workloads import (
    nested_ml_affi_boundary as _nested_ml_affi_boundary,
    nested_ml_l3_boundary as _nested_ml_l3_boundary,
    nested_refll_boundary as _nested_refll_boundary,
)

SLICE_STEPS = 512
REPEATS = 3
DEEP = 12
SHALLOW = 6
#: Oracle-heavy batch: deep enough that every oracle needs many slices at
#: ORACLE_SLICE_STEPS, shallow enough that the quadratic substitution
#: machines stay fast.  (The recursive parsers cap workload depth at ~80.)
ORACLE_DEEP = 40
ORACLE_SLICE_STEPS = 64
#: Headroom on the ``steps ≤ slices × slice_steps`` audit; the guarantee is
#: exact today, the tolerance only keeps the gate from tripping on a future
#: backend whose step accounting is slightly coarser than its slicing.
SLICE_BUDGET_TOLERANCE = 1.05
JSON_REPORT = "BENCH_serving.json"
POOL_WORKERS = 2
#: The checkpoint section pauses executions after one slice this long, so
#: every backend (the shallow-stepping oracles included) is mid-run when
#: its snapshot is taken.
CHECKPOINT_PROBE_STEPS = 8
#: Fuel for the snapshot-overhead probes: ample, the probes pause after one
#: short slice and the restored runs are never driven to completion.
CHECKPOINT_PROBE_FUEL = 1_000_000
#: Preemption ceiling and slice size for the preempt -> resume
#: differential: a budget of ``PREEMPT_MAX_SLICES x PREEMPT_SLICE_STEPS``
#: transitions stops the deep requests mid-run while the small ones finish
#: normally.
PREEMPT_MAX_SLICES = 2
PREEMPT_SLICE_STEPS = 8
#: Chaos section (``--chaos``): a small slice size so the deep requests in
#: the mixed batch run for several slices — injected crashes and stalls land
#: *mid-run*, not after the work is already done.
CHAOS_SLICE_STEPS = 32
CHAOS_SEED = 20260808
#: The injected stall (worker.slow) is far past the victim's deadline, so
#: the deadline verdict is deterministic despite real clocks in the workers.
CHAOS_DEADLINE_SECONDS = 0.05
CHAOS_SLOW_SECONDS = 0.3
#: Overload subsection: admit this many of the 12 mixed requests; the tail
#: must be shed with structured ``rejected_overload`` responses.
CHAOS_MAX_BATCH = 8
#: Network section (``--net``): fleet sizes and gates.  The join probe maps
#: this many distinct affinity keys before and after a third endpoint joins;
#: consistent hashing must move a *nonzero, bounded* fraction of them
#: (expected ~1/3 — static modulo placement would move ~2/3) and move them
#: only onto the joiner.
NET_WORKERS = POOL_WORKERS
NET_PROBE_KEYS = 48
NET_REMAP_BOUND = 0.65
#: Rebalance-under-skew: this many copies of one hot program against two
#: singleton programs on a 3-endpoint fleet.  Static sha256 placement piles
#: every copy on one endpoint; top-2 load-aware dispatch must split them.
NET_SKEW_COPIES = 10
#: Slow-link chaos: the injected pre-RESPONSE stall must dwarf the router's
#: per-attempt frame deadline so the timeout verdict is deterministic, and
#: the deadline must comfortably exceed any honest inter-frame gap (one
#: 32-step slice, or a cold compile) so healthy endpoints never trip it.
NET_ATTEMPT_TIMEOUT_SECONDS = 0.25
NET_SLOW_SECONDS = 1.0
#: QoS section (``--qos``): the generated mixed-tenant batch.  A small slice
#: size keeps every tenant mid-run for many turns, so the weighted driver
#: actually arbitrates contention; the seed pins the fuzz generator's
#: contribution so the batch is identical across runs and machines.
QOS_SLICE_STEPS = 32
QOS_SEED = 20260808
QOS_CLASSES = ("high", "standard", "best-effort")
#: Generated well-typed programs per priority class (every class gets the
#: *same* programs, so per-class latency is comparable).
QOS_GENERATED_PER_CLASS = 8
#: Legacy corpus depths folded into each class's workload mix.
QOS_LEGACY_DEPTHS = (12, 24)
#: One deliberately long-running tenant per class: the refs Landin's knot at
#: this fuel is ~375 slices of ballast at QOS_SLICE_STEPS, the contention
#: that separates the classes' p99s (the knot dominates each class's p99, and
#: a weight-8 tenant clears it ~8x sooner in scheduler turns than a weight-1
#: tenant, so the gate's margin is structural, not timing luck).
QOS_BALLAST_FUEL = 12_000
#: Latency passes; per-class percentiles are the median across passes so a
#: single noisy pass cannot flip the gate.
QOS_REPEATS = 3


def make_requests(deep: int = DEEP, shallow: int = SHALLOW):
    """A mixed batch: 3 systems, 4 backends, 12 requests, one fuel-starved."""
    return [
        Request(language="RefLL", source=_nested_refll_boundary(deep), request_id="refs-deep"),
        Request(language="RefLL", source=_nested_refll_boundary(shallow), request_id="refs-shallow"),
        Request(
            language="RefLL",
            source=_nested_refll_boundary(shallow),
            backend="substitution",
            request_id="refs-oracle",
        ),
        Request(
            language="RefLL", source=_nested_refll_boundary(shallow), backend="cek", request_id="refs-segment"
        ),
        Request(
            language="MiniML",
            system="affine",
            source=_nested_ml_affi_boundary(deep),
            request_id="affine-deep",
        ),
        Request(
            language="MiniML",
            system="affine",
            source=_nested_ml_affi_boundary(shallow),
            backend="substitution",
            request_id="affine-oracle",
        ),
        Request(
            language="MiniML",
            system="affine",
            source=_nested_ml_affi_boundary(shallow),
            backend="bigstep",
            request_id="affine-bigstep",
        ),
        Request(language="Affi", source="(if (boundary bool 7) 1 2)", request_id="affi-small"),
        Request(
            language="MiniML", system="l3", source=_nested_ml_l3_boundary(deep), request_id="l3-deep"
        ),
        Request(
            language="MiniML",
            system="l3",
            source=_nested_ml_l3_boundary(shallow),
            backend="substitution",
            request_id="l3-oracle",
        ),
        Request(
            language="MiniML", system="l3", source="(! (boundary (ref int) (new true)))", request_id="l3-small"
        ),
        Request(
            language="MiniML",
            system="affine",
            source=_nested_ml_affi_boundary(deep),
            fuel=7,
            request_id="affine-starved",
        ),
    ]


def make_oracle_requests(deep: int = ORACLE_DEEP):
    """An oracle-heavy batch: every resumable oracle backend, driven deep."""
    return [
        Request(
            language="RefLL",
            source=_nested_refll_boundary(deep),
            backend="substitution",
            request_id="oracle-refs-substitution",
        ),
        Request(
            language="RefLL",
            source=_nested_refll_boundary(deep),
            backend="cek",
            request_id="oracle-refs-segment",
        ),
        Request(
            language="MiniML",
            system="l3",
            source=_nested_ml_l3_boundary(deep // 2),
            backend="substitution",
            request_id="oracle-l3-substitution",
        ),
        Request(
            language="MiniML",
            system="l3",
            source=_nested_ml_l3_boundary(deep // 2),
            backend="bigstep",
            request_id="oracle-l3-bigstep",
        ),
        Request(
            language="MiniML",
            system="l3",
            source=_nested_ml_l3_boundary(deep // 2),
            backend="cek",
            request_id="oracle-l3-cek",
        ),
        # A compiled fast-path neighbour: its latency must not depend on the
        # deep oracles sharing the loop.
        Request(
            language="RefLL",
            source=_nested_refll_boundary(SHALLOW),
            request_id="oracle-batch-compiled-neighbour",
        ),
    ]


def _slice_budget_violations(responses, slice_steps):
    """Responses whose machines advanced past the per-turn slice budget.

    Each ``step_n`` call may advance at most ``slice_steps`` transitions, so
    ``steps ≤ slices × slice_steps`` must hold for every served response; a
    backend that runs its whole program in its first slice (the old
    ``BlockingExecution`` behaviour) violates it on any deep request.
    """
    violations = []
    for response in responses:
        if response.result is None or response.slices == 0:
            continue
        budget = response.slices * slice_steps * SLICE_BUDGET_TOLERANCE
        if response.result.steps > budget:
            violations.append(
                {
                    "id": response.request.request_id,
                    "backend": response.backend,
                    "steps": response.result.steps,
                    "slices": response.slices,
                    "slice_steps": slice_steps,
                }
            )
    return violations


def _observable(response):
    """The scheduling-independent view of a response (no timings/slices)."""
    result = response.result
    return (
        response.error,
        None if result is None else str(result.value),
        None if result is None else str(result.failure),
        None if result is None else result.steps,
    )


def _best_of(action, repeats: int = REPEATS) -> float:
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        action()
        timings.append(time.perf_counter() - start)
    return min(timings)


def _affinity_for_shard(pool, shard: int, source: str) -> str:
    """A per-request affinity key that places ``source`` on ``shard``."""
    for attempt in range(256):
        key = f"pin-{shard}-{attempt}"
        if pool.shard_of(Request(language="RefLL", source=source, affinity=key)) == shard:
            return key
    raise AssertionError(f"no affinity key found for shard {shard}")


def collect_pool_report() -> dict:
    """The multi-process section: sharded differential + cross-worker cache hits."""
    requests = make_requests()
    with WorkerPool(workers=POOL_WORKERS, slice_steps=SLICE_STEPS) as pool:
        sequential = pool.run_sequential(requests)
        pooled = pool.run_batch(requests)
        mismatches = [
            request.request_id
            for request, seq, shard in zip(requests, sequential, pooled)
            if _observable(seq) != _observable(shard)
        ]
        pool_seconds = _best_of(lambda: pool.run_batch(requests))
        sequential_seconds = _best_of(lambda: pool.run_sequential(requests))
        mixed_stats = pool.cache_stats()
        shard_load = {}
        for response in pooled:
            shard_load[str(response.shard)] = shard_load.get(str(response.shard), 0) + 1

    # Repeated-program batch: the same hot program deliberately spread across
    # every worker via affinity keys.  Worker 0 compiles and publishes; every
    # other worker must import the published artifact instead of recompiling —
    # the cross-worker pipeline-cache hit this benchmark gates on.
    hot_source = _nested_refll_boundary(DEEP)
    with WorkerPool(workers=POOL_WORKERS, slice_steps=SLICE_STEPS) as pool:
        rounds = []
        for shard in range(POOL_WORKERS):
            key = _affinity_for_shard(pool, shard, hot_source)
            batch = [
                Request(language="RefLL", source=hot_source, affinity=key, request_id=f"hot-{shard}-{copy}")
                for copy in range(3)
            ]
            rounds.append(pool.run_batch(batch))
        repeated_stats = pool.cache_stats()
        repeated_per_request = [
            {
                "id": response.request.request_id,
                "shard": response.shard,
                "ok": response.ok,
                "cache_hit": response.cache_hit,
                "shared_cache_hit": response.shared_cache_hit,
                "published": response.published,
                "coalesced": response.coalesced,
            }
            for responses in rounds
            for response in responses
        ]
        repeated_mismatches = [
            response.request.request_id for responses in rounds for response in responses if not response.ok
        ]

    return {
        "workers": POOL_WORKERS,
        "results_match": not mismatches,
        "mismatches": mismatches,
        "pool_seconds": pool_seconds,
        "sequential_seconds": sequential_seconds,
        "throughput_rps": len(requests) / pool_seconds,
        "shard_load": shard_load,
        "mixed_batch_cache": mixed_stats,
        "repeated_program_cache": repeated_stats,
        "repeated_program_ok": not repeated_mismatches,
        "repeated_program_per_request": repeated_per_request,
        "cross_worker_cache_hits": repeated_stats["cross_worker_hits"],
        "publishes": repeated_stats["publishes"],
    }


def _start_fleet(worker_count, slice_steps, fault_plans=None, dispatch=None, **router_kwargs):
    """A router wired to ``worker_count`` in-process network workers."""
    workers = []
    for endpoint_id in range(worker_count):
        worker = NetWorker(
            endpoint_id=endpoint_id,
            slice_steps=slice_steps,
            fault_plan=(fault_plans or {}).get(endpoint_id),
        )
        worker.start()
        workers.append(worker)
    router = NetRouter(slice_steps=slice_steps, dispatch=dispatch, **router_kwargs)
    router.start()
    for worker in workers:
        router.add_worker(worker.address)
    return router, workers


def _stop_fleet(router, workers):
    router.stop()
    for worker in workers:
        worker.stop()


def _net_affinity_for(router, endpoint_id: int, source: str) -> str:
    """A per-request affinity key the router's ring places on ``endpoint_id``."""
    for attempt in range(256):
        key = f"pin-{endpoint_id}-{attempt}"
        probe = Request(language="RefLL", source=source, affinity=key)
        if router.endpoint_for(probe) == endpoint_id:
            return key
    raise AssertionError(f"no affinity key found for endpoint {endpoint_id}")


def collect_net_report() -> dict:
    """The network-tier section: framed differential, elastic join, skew rebalance.

    Three gated subsections:

    * **differential** — the mixed batch through router + TCP workers equals
      the router's own sequential baseline, with timings;
    * **join** — a third endpoint joins a warm 2-endpoint fleet: a nonzero
      but bounded fraction of placements remap (all onto the joiner), and
      the joiner's first serving of an already-published program warms from
      the shared store instead of recompiling (``shared_cache_hit``);
    * **rebalance-under-skew** — ``NET_SKEW_COPIES`` copies of one hot
      program against two singletons on 3 endpoints: static sha256-modulo
      placement (the pool's original scheme, kept as
      :func:`~repro.serve.pool.static_shard_of`) piles every copy onto one
      endpoint, top-2 load-aware dispatch must land a strictly smaller
      max/min shard-load imbalance while still matching the sequential
      baseline.
    """
    requests = make_requests()
    hot_source = _nested_refll_boundary(DEEP)
    router, workers = _start_fleet(NET_WORKERS, SLICE_STEPS)
    try:
        sequential = router.run_sequential(requests)
        served = router.run_batch(requests)
        mismatches = [
            request.request_id
            for request, seq, net in zip(requests, sequential, served)
            if _observable(seq) != _observable(net)
        ]
        net_seconds = _best_of(lambda: router.run_batch(requests))
        sequential_seconds = _best_of(lambda: router.run_sequential(requests))
        endpoint_load = {}
        for response in served:
            endpoint_load[str(response.shard)] = endpoint_load.get(str(response.shard), 0) + 1

        # Publish the hot program before the join so the joiner can warm.
        seed = router.run_batch(
            [Request(language="RefLL", source=hot_source, request_id="hot-seed")]
        )[0]

        # -- elastic join ------------------------------------------------------
        probes = [
            Request(language="Affi", source="(if (boundary bool 7) 1 2)", affinity=f"key-{index}")
            for index in range(NET_PROBE_KEYS)
        ]
        before = [router.endpoint_for(probe) for probe in probes]
        joiner = NetWorker(endpoint_id=NET_WORKERS, slice_steps=SLICE_STEPS)
        joiner.start()
        workers.append(joiner)
        joiner_id = router.add_worker(joiner.address)
        after = [router.endpoint_for(probe) for probe in probes]
        moved = [index for index in range(len(probes)) if before[index] != after[index]]
        remap_fraction = len(moved) / len(probes)
        moved_only_to_joiner = all(after[index] == joiner_id for index in moved)

        pin = _net_affinity_for(router, joiner_id, hot_source)
        warmed = router.run_batch(
            [Request(language="RefLL", source=hot_source, affinity=pin, request_id="hot-join")]
        )[0]
        new_member_warm = bool(
            warmed.ok and warmed.shard == joiner_id and warmed.shared_cache_hit
        )
        store = router.stats()["store"]
    finally:
        _stop_fleet(router, workers)

    # -- rebalance under skew --------------------------------------------------
    skewed = [
        Request(language="RefLL", source=hot_source, request_id=f"hot-{index}")
        for index in range(NET_SKEW_COPIES)
    ] + [
        Request(language="Affi", source="(if (boundary bool 7) 1 2)", request_id="cold-affi"),
        Request(
            language="MiniML",
            system="l3",
            source="(! (boundary (ref int) (new true)))",
            request_id="cold-l3",
        ),
    ]
    skew_fleet = NET_WORKERS + 1

    def _imbalance(counts: dict) -> float:
        loads = [counts.get(str(endpoint), 0) for endpoint in range(skew_fleet)]
        return max(loads) / max(1, min(loads))

    static_counts: dict = {}
    for request in skewed:
        shard = str(static_shard_of(request, skew_fleet))
        static_counts[shard] = static_counts.get(shard, 0) + 1

    router, workers = _start_fleet(
        skew_fleet, SLICE_STEPS, dispatch=DispatchPolicy(top_k=2, balance_load=True)
    )
    try:
        skew_baseline = router.run_sequential(skewed)
        skew_served = router.run_batch(skewed)
        skew_mismatches = [
            request.request_id
            for request, seq, net in zip(skewed, skew_baseline, skew_served)
            if _observable(seq) != _observable(net)
        ]
        balanced_counts: dict = {}
        for response in skew_served:
            balanced_counts[str(response.shard)] = balanced_counts.get(str(response.shard), 0) + 1
        diverted = router.stats()["counters"]["diverted"]
    finally:
        _stop_fleet(router, workers)

    static_imbalance = _imbalance(static_counts)
    balanced_imbalance = _imbalance(balanced_counts)
    return {
        "workers": NET_WORKERS,
        "results_match": not mismatches,
        "mismatches": mismatches,
        "net_seconds": net_seconds,
        "sequential_seconds": sequential_seconds,
        "throughput_rps": len(requests) / net_seconds,
        "endpoint_load": endpoint_load,
        "store": store,
        "hot_seed_published": bool(seed.published),
        "join": {
            "probe_keys": NET_PROBE_KEYS,
            "joiner": joiner_id,
            "moved": len(moved),
            "remap_fraction": remap_fraction,
            "remap_bound": NET_REMAP_BOUND,
            "moved_only_to_joiner": moved_only_to_joiner,
            "new_member_warm": new_member_warm,
            "ok": bool(moved) and remap_fraction <= NET_REMAP_BOUND and moved_only_to_joiner,
        },
        "rebalance": {
            "fleet": skew_fleet,
            "skew_copies": NET_SKEW_COPIES,
            "results_match": not skew_mismatches,
            "mismatches": skew_mismatches,
            "static_shard_load": static_counts,
            "balanced_shard_load": balanced_counts,
            "static_imbalance": static_imbalance,
            "balanced_imbalance": balanced_imbalance,
            "diverted": diverted,
            "ok": not skew_mismatches and balanced_imbalance < static_imbalance,
        },
    }


def collect_net_chaos_report() -> dict:
    """Network chaos: injected connection drops and slow links, gated == baseline.

    Two subsections, each on a fresh 2-endpoint fleet at the chaos slice
    size (so the deep requests are genuinely mid-run when faults land):

    * **drop** — the victim endpoint (wherever the ring places ``refs-deep``)
      severs its connection abruptly at that request's second slice boundary,
      *after* streaming the boundary's checkpoint frame; the router must see
      the drop, account it on the endpoint's breaker, and finish the whole
      group by checkpoint migration on the survivor — results identical to
      the fault-free sequential baseline;
    * **slow link** — the victim stalls ``NET_SLOW_SECONDS`` before its
      terminal RESPONSE; the router's ``attempt_timeout_seconds`` per-frame
      deadline must convert the wedge into a structured drop and recover the
      same way.
    """
    requests = make_requests()
    scheduler = make_default_scheduler(slice_steps=CHAOS_SLICE_STEPS)
    victim = HashRing(range(NET_WORKERS)).node_for(scheduler.placement_key(requests[0]))

    drop_plan = FaultPlan(
        [Fault(site="net.drop", request_id="refs-deep", at_slice=2, times=1, shard=victim)],
        seed=CHAOS_SEED,
    )
    router, workers = _start_fleet(
        NET_WORKERS,
        CHAOS_SLICE_STEPS,
        fault_plans={victim: drop_plan},
        dispatch=DispatchPolicy(top_k=1, balance_load=False),
    )
    try:
        baseline = router.run_sequential(requests)
        start = time.perf_counter()
        served = router.run_batch(requests)
        drop_seconds = time.perf_counter() - start
        drop_mismatches = [
            request.request_id
            for request, seq, net in zip(requests, baseline, served)
            if _observable(seq) != _observable(net)
        ]
        migrated = [r.request.request_id for r in served if r.migrated_from is not None]
        counters = router.stats()["counters"]
        drop = {
            "victim": victim,
            "seconds": drop_seconds,
            "results_match": not drop_mismatches,
            "mismatches": drop_mismatches,
            "drops": counters["drops"],
            "migrations": counters["migrations"],
            "redispatches": counters["redispatches"],
            "migrated_requests": migrated,
            "ok": not drop_mismatches and counters["drops"] >= 1 and counters["migrations"] >= 1,
        }
    finally:
        _stop_fleet(router, workers)

    slow_plan = FaultPlan(
        [Fault(site="net.slow", times=1, delay_seconds=NET_SLOW_SECONDS, shard=victim)],
        seed=CHAOS_SEED,
    )
    router, workers = _start_fleet(
        NET_WORKERS,
        CHAOS_SLICE_STEPS,
        fault_plans={victim: slow_plan},
        dispatch=DispatchPolicy(
            top_k=1, balance_load=False, attempt_timeout_seconds=NET_ATTEMPT_TIMEOUT_SECONDS
        ),
    )
    try:
        baseline = router.run_sequential(requests)
        served = router.run_batch(requests)
        slow_mismatches = [
            request.request_id
            for request, seq, net in zip(requests, baseline, served)
            if _observable(seq) != _observable(net)
        ]
        counters = router.stats()["counters"]
        slow = {
            "victim": victim,
            "attempt_timeout_seconds": NET_ATTEMPT_TIMEOUT_SECONDS,
            "stall_seconds": NET_SLOW_SECONDS,
            "results_match": not slow_mismatches,
            "mismatches": slow_mismatches,
            "timeouts": counters["timeouts"],
            "migrations": counters["migrations"],
            "redispatches": counters["redispatches"],
            "ok": (
                not slow_mismatches
                and counters["timeouts"] >= 1
                and counters["migrations"] + counters["redispatches"] >= 1
            ),
        }
    finally:
        _stop_fleet(router, workers)

    return {"seed": CHAOS_SEED, "drop": drop, "slow": slow, "ok": drop["ok"] and slow["ok"]}


def _exit_hard(code, fuel: int = 100_000):
    os._exit(13)  # simulate a segfaulting backend: no exception, no cleanup


def _crashing_scheduler_factory(slice_steps: int) -> Scheduler:
    """Default scheduler plus a 'crash' backend that kills its worker."""
    scheduler = make_default_scheduler(slice_steps=slice_steps)
    scheduler.systems["refs"].target.register_backend("crash", _exit_hard)
    return scheduler


def collect_migration_report() -> dict:
    """Mid-run migration: a crashed shard's in-flight requests finish elsewhere.

    Two deep requests are pinned (by affinity) to the same shard as a
    request whose backend kills the worker process mid-batch.  The parent
    has been receiving their slice-boundary checkpoints all along, so both
    must *migrate*: resume on a surviving shard and land on exactly the
    outcomes of an undisturbed run.
    """
    baseline_scheduler = make_default_scheduler(slice_steps=SLICE_STEPS)
    victims = [
        Request(language="RefLL", source=_nested_refll_boundary(DEEP), request_id="victim-deep"),
        Request(
            language="RefLL",
            source=_nested_refll_boundary(DEEP - 1),
            backend="substitution",
            request_id="victim-oracle",
        ),
    ]
    baseline = {
        response.request.request_id: _observable(response)
        for response in baseline_scheduler.serve_sequential(victims)
    }

    with WorkerPool(
        workers=POOL_WORKERS, slice_steps=SLICE_STEPS, scheduler_factory=_crashing_scheduler_factory
    ) as pool:
        crash_key = _affinity_for_shard(pool, 0, _nested_refll_boundary(DEEP))
        batch = [
            # retry_budget=0: the crasher itself must keep the whole-shard
            # failure (with budget it would crash its redispatch target too).
            Request(
                language="RefLL",
                source="(+ 1 2)",
                backend="crash",
                affinity=crash_key,
                request_id="boom",
                retry_budget=0,
            )
        ] + [
            Request(
                language=victim.language,
                source=victim.source,
                backend=victim.backend,
                affinity=crash_key,
                request_id=victim.request_id,
            )
            for victim in victims
        ]
        start = time.perf_counter()
        responses = {response.request.request_id: response for response in pool.run_batch(batch)}
        seconds = time.perf_counter() - start
        stats = pool.cache_stats()

    migrated = [
        response
        for response in responses.values()
        if response.migrated_from is not None and response.resumed
    ]
    mismatches = [
        request_id
        for request_id, expected in baseline.items()
        if _observable(responses[request_id]) != expected
    ]
    ok = (
        not mismatches
        and len(migrated) == len(victims)
        and stats["migrations"] >= 1
        and responses["boom"].error is not None
    )
    return {
        "ok": ok,
        "victims": len(victims),
        "migrated": len(migrated),
        "migrations": stats["migrations"],
        "worker_crashes": stats["worker_crashes"],
        "mismatches": mismatches,
        "seconds": seconds,
        "per_request": [
            {
                "id": response.request.request_id,
                "ok": response.ok,
                "error": response.error,
                "shard": response.shard,
                "migrated_from": response.migrated_from,
                "resumed": response.resumed,
            }
            for response in responses.values()
        ],
    }


def collect_chaos_report() -> dict:
    """The fault-injection gate: the mixed batch under a seeded FaultPlan.

    Three distinct fault kinds are injected into the 12-request mixed pool
    batch, each aimed structurally (shard + request id + slice) so the same
    faults fire at the same boundaries every run:

    * ``worker.crash`` — the shard serving ``refs-deep`` dies when that
      request finishes its second slice; every in-flight request on the
      shard must recover (migration from streamed checkpoints, or
      redispatch) and land on the fault-free baseline;
    * ``checkpoint.pickle`` — ``affine-deep``'s checkpoints (pinned to the
      crashing shard) are suppressed, so *its* recovery must come from the
      from-scratch redispatch path;
    * ``worker.slow`` — ``l3-deep`` (pinned to the surviving shard, with a
      deadline) stalls past its budget and must come back as a structured
      ``deadline_exceeded`` response carrying a resumable checkpoint —
      which, granted more time, completes identical to the baseline.

    The gate: every response either equals the fault-free sequential
    baseline or is a structured policy response — no raw exceptions, no
    lost requests — with the bounded-latency invariant holding on the
    *cumulative* (retry-inclusive) accounting.  Two subsections exercise
    the remaining fault kinds and policies: admission overload (the batch
    tail shed deterministically) and checkpoint-store faults
    (``store.write``/``restore.tamper``/a torn file on disk).
    """
    baseline_scheduler = make_default_scheduler(slice_steps=CHAOS_SLICE_STEPS)
    requests = make_requests()
    baseline = {
        response.request.request_id: _observable(response)
        for response in baseline_scheduler.serve_sequential(requests)
    }

    # Aim the faults: the crash follows refs-deep's natural placement; the
    # deadline victim is pinned *off* that shard (its expiry must not race
    # the crash) and the checkpoint-suppressed victim *onto* it.
    probe = WorkerPool(workers=POOL_WORKERS, slice_steps=CHAOS_SLICE_STEPS)
    try:
        by_id = {request.request_id: request for request in requests}
        crash_shard = probe.shard_of(by_id["refs-deep"])
        other_shard = (crash_shard + 1) % POOL_WORKERS
        slow_key = _affinity_for_shard(probe, other_shard, by_id["l3-deep"].source)
        suppress_key = _affinity_for_shard(probe, crash_shard, by_id["affine-deep"].source)
    finally:
        probe.close()

    chaos_batch = []
    for request in requests:
        if request.request_id == "l3-deep":
            request = replace(
                request, affinity=slow_key, deadline_seconds=CHAOS_DEADLINE_SECONDS
            )
        elif request.request_id == "affine-deep":
            request = replace(request, affinity=suppress_key)
        chaos_batch.append(request)

    plan = FaultPlan(
        seed=CHAOS_SEED,
        faults=(
            Fault(
                site="worker.crash",
                request_id="refs-deep",
                shard=crash_shard,
                at_slice=2,
                times=1,
            ),
            Fault(
                site="worker.slow",
                request_id="l3-deep",
                shard=other_shard,
                at_slice=1,
                delay_seconds=CHAOS_SLOW_SECONDS,
                times=1,
            ),
            Fault(site="checkpoint.pickle", request_id="affine-deep", shard=crash_shard, times=None),
        ),
    )
    with WorkerPool(
        workers=POOL_WORKERS, slice_steps=CHAOS_SLICE_STEPS, fault_plan=plan
    ) as pool:
        start = time.perf_counter()
        responses = pool.run_batch(chaos_batch)
        seconds = time.perf_counter() - start
        stats = pool.cache_stats()
        health = pool.health_stats()

    served = {response.request.request_id: response for response in responses}
    policy_stopped = sorted(
        request_id for request_id, response in served.items() if response.policy_stopped
    )
    mismatches = [
        request_id
        for request_id, expected in baseline.items()
        if not served[request_id].policy_stopped and _observable(served[request_id]) != expected
    ]
    deadline_rows = [response for response in responses if response.deadline_exceeded]
    deadline_has_checkpoint = bool(deadline_rows) and all(
        response.checkpoint is not None for response in deadline_rows
    )
    # Granting the expired request more time = resuming its checkpoint: the
    # continuation (without the injected stall) must land on the baseline.
    deadline_retry_matches = False
    if deadline_has_checkpoint:
        retried = make_default_scheduler(slice_steps=CHAOS_SLICE_STEPS).resume(
            [response.checkpoint for response in deadline_rows]
        )
        deadline_retry_matches = all(
            _observable(response) == baseline[response.request.request_id]
            for response in retried
        )
    refs_deep = served["refs-deep"]
    affine_deep = served["affine-deep"]
    slice_violations = _slice_budget_violations(responses, CHAOS_SLICE_STEPS)

    ok = (
        not mismatches
        and policy_stopped == ["l3-deep"]
        and deadline_has_checkpoint
        and deadline_retry_matches
        and stats["worker_crashes"] == 1
        and stats["migrations"] >= 1
        and refs_deep.resumed
        and refs_deep.migrated_from == crash_shard
        and refs_deep.attempts == 2
        and stats["redispatches"] >= 1
        and not affine_deep.resumed
        and affine_deep.attempts == 2
        and not slice_violations
    )
    chaos = {
        "seed": CHAOS_SEED,
        "slice_steps": CHAOS_SLICE_STEPS,
        "fault_kinds": ["worker.crash", "worker.slow", "checkpoint.pickle"],
        "crash_shard": crash_shard,
        "seconds": seconds,
        "results_match": not mismatches,
        "mismatches": mismatches,
        "policy_stopped": policy_stopped,
        "deadline_exceeded": [response.request.request_id for response in deadline_rows],
        "deadline_has_checkpoint": deadline_has_checkpoint,
        "deadline_retry_matches_baseline": deadline_retry_matches,
        "worker_crashes": stats["worker_crashes"],
        "migrations": stats["migrations"],
        "redispatches": stats["redispatches"],
        "retries": stats["retries"],
        "slice_budget_ok": not slice_violations,
        "slice_budget_violations": slice_violations,
        "breaker_states": {
            shard: row["state"] for shard, row in health["shards"].items()
        },
        "per_request": [
            {
                "id": response.request.request_id,
                "ok": response.ok,
                "error": response.error,
                "shard": response.shard,
                "attempts": response.attempts,
                "resumed": response.resumed,
                "migrated_from": response.migrated_from,
                "deadline_exceeded": response.deadline_exceeded,
                "rejected_overload": response.rejected_overload,
            }
            for response in responses
        ],
        "ok": ok,
    }
    chaos["overload"] = _collect_overload_report(requests, baseline)
    chaos["store_faults"] = _collect_store_fault_report()
    return chaos


def _collect_overload_report(requests, baseline) -> dict:
    """Admission overload: the deterministic tail is shed, the head served."""
    with WorkerPool(
        workers=POOL_WORKERS, slice_steps=CHAOS_SLICE_STEPS, max_batch=CHAOS_MAX_BATCH
    ) as pool:
        responses = pool.run_batch(requests)
        shed = pool.cache_stats()["shed"]
    head, tail = responses[:CHAOS_MAX_BATCH], responses[CHAOS_MAX_BATCH:]
    head_mismatches = [
        response.request.request_id
        for response in head
        if _observable(response) != baseline[response.request.request_id]
    ]
    tail_ok = all(
        response.rejected_overload and response.result is None and response.error is None
        for response in tail
    )
    return {
        "max_batch": CHAOS_MAX_BATCH,
        "admitted": len(head),
        "shed": shed,
        "tail_rejected_structurally": tail_ok,
        "head_mismatches": head_mismatches,
        "ok": tail_ok and not head_mismatches and shed == len(tail),
    }


def _collect_store_fault_report() -> dict:
    """Checkpoint-store faults: write failure, tampered read, a torn file."""
    scheduler = make_default_scheduler(slice_steps=CHAOS_SLICE_STEPS)
    paused = scheduler.serve_preempting(
        [Request(language="RefLL", source=_nested_refll_boundary(DEEP), request_id="durable")],
        max_slices=1,
    )[0]
    baseline = _observable(
        scheduler.serve_sequential(
            [Request(language="RefLL", source=_nested_refll_boundary(DEEP))]
        )[0]
    )
    directory = tempfile.mkdtemp(prefix="chaos-store-")
    plan = FaultPlan(
        seed=CHAOS_SEED,
        faults=(
            Fault(site="store.write", times=1),
            Fault(site="restore.tamper", times=1),
        ),
    )
    store = CheckpointStore(directory, fault_plan=plan)
    write_failed_structurally = False
    try:
        store.save(paused.checkpoint)
    except OSError:
        write_failed_structurally = True  # the injected disk failure
    path = store.save(paused.checkpoint)  # the fault is spent: this one lands
    tamper_detected = False
    try:
        store.load(path)
    except CheckpointCorrupt:
        tamper_detected = True  # the injected torn read, structurally reported
    clean_load_ok = store.load(path).request.request_id == "durable"
    with open(os.path.join(directory, "torn.ckpt"), "wb") as handle:
        handle.write(b"half a pickl")  # a write the process never finished
    responses = make_default_scheduler(slice_steps=CHAOS_SLICE_STEPS).resume_stored(store)
    finished = [r for r in responses if r.error is None and r.result is not None]
    corrupt_reported = [r for r in responses if r.error is not None and "torn.ckpt" in r.error]
    resumed_matches = len(finished) == 1 and _observable(finished[0]) == baseline
    consumed = path not in store.paths()
    swept = store.gc(max_age_seconds=0.0)  # age out the torn leftover
    ok = (
        write_failed_structurally
        and tamper_detected
        and clean_load_ok
        and resumed_matches
        and bool(corrupt_reported)
        and consumed
        and not store.paths()
    )
    return {
        "fault_kinds": ["store.write", "restore.tamper"],
        "fired": plan.fired(),
        "write_failed_structurally": write_failed_structurally,
        "tamper_detected": tamper_detected,
        "clean_load_ok": clean_load_ok,
        "resumed_matches_baseline": resumed_matches,
        "corrupt_file_reported": bool(corrupt_reported),
        "consumed_after_resume": consumed,
        "gc_swept": swept,
        "ok": ok,
    }


def collect_checkpoint_report() -> dict:
    """The snapshot section: per-backend overhead plus the preempt -> resume gate."""
    scheduler = make_default_scheduler(slice_steps=SLICE_STEPS)

    # Per-backend snapshot/restore overhead: pause every snapshot-capable
    # backend mid-run, then time reify -> pickle -> restore round trips.
    workloads = {
        "refs": ("RefLL", _nested_refll_boundary(ORACLE_DEEP)),
        "affine": ("MiniML", _nested_ml_affi_boundary(ORACLE_DEEP)),
        "l3": ("MiniML", _nested_ml_l3_boundary(ORACLE_DEEP // 2)),
    }
    overhead = []
    expected_backends = 0
    for system_name, (language, source) in sorted(workloads.items()):
        system = scheduler.systems[system_name]
        code = system.compile_source(language, source).target_code
        expected_backends += len(system.target.restores)
        for backend in sorted(system.target.restores):
            probe = system.start_compiled(code, fuel=CHECKPOINT_PROBE_FUEL, backend=backend)
            # The optimizing backend can fold a deep-crossing workload down to
            # a couple of transitions; pause it after a single step so there
            # is still mid-run state to snapshot.
            probe_steps = 1 if backend == "cek-opt" else CHECKPOINT_PROBE_STEPS
            if probe.step_n(probe_steps) is not None:
                continue  # finished in one probe slice: nothing mid-run to measure
            snapshot_seconds = _best_of(lambda: probe.snapshot())
            payload = pickle.dumps(probe.snapshot())
            restore_seconds = _best_of(
                lambda: system.restore_execution(pickle.loads(payload))
            )
            overhead.append(
                {
                    "system": system_name,
                    "backend": backend,
                    "snapshot_ms": snapshot_seconds * 1e3,
                    "restore_ms": restore_seconds * 1e3,
                    "snapshot_bytes": len(payload),
                }
            )

    # Preempt -> resume differential: stop the mixed batch at a slice
    # ceiling, continue the stopped requests from their checkpoints, and
    # require the combined outcomes to equal the uninterrupted baseline.
    requests = make_requests()
    baseline = {
        response.request.request_id: _observable(response)
        for response in scheduler.serve_sequential(requests)
    }
    preempt_scheduler = make_default_scheduler(slice_steps=PREEMPT_SLICE_STEPS)
    start = time.perf_counter()
    served = preempt_scheduler.serve_preempting(make_requests(), max_slices=PREEMPT_MAX_SLICES)
    preempted = [response for response in served if response.preempted]
    resumed = (
        preempt_scheduler.resume([response.checkpoint for response in preempted])
        if preempted
        else []
    )
    preempt_resume_seconds = time.perf_counter() - start
    combined = {
        response.request.request_id: response for response in served if not response.preempted
    }
    combined.update({response.request.request_id: response for response in resumed})
    preempt_mismatches = [
        request_id
        for request_id, expected in baseline.items()
        if _observable(combined[request_id]) != expected
    ]

    return {
        "snapshot_restore": overhead,
        "snapshot_restore_ok": len(overhead) == expected_backends,
        "snapshot_backends_expected": expected_backends,
        "preempt_max_slices": PREEMPT_MAX_SLICES,
        "preempt_slice_steps": PREEMPT_SLICE_STEPS,
        "preempted": len(preempted),
        "preempt_resume_seconds": preempt_resume_seconds,
        "preempt_resume_ok": bool(preempted) and not preempt_mismatches,
        "preempt_mismatches": preempt_mismatches,
    }


def _percentile(values, q: float) -> float:
    """Nearest-rank percentile of a non-empty sample."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, math.ceil(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


def _qos_case_pool():
    """The per-class workload mix: generated fuzz cases + legacy corpus.

    Every priority class runs the *same* programs, so class latency
    distributions differ only by scheduling weight.  The generated slice is
    the fuzzer's first ``QOS_GENERATED_PER_CLASS`` well-typed ``ok`` cases
    under the pinned seed; the legacy slice is the promoted
    ``util.workloads`` corpus entries at two depths; the ballast is one
    genuinely divergent knot per class, fuel-bounded to ~125 slices — the
    long-running tenant whose neighbours' p99 the weights protect.
    """
    from repro.fuzz import DIVERGENT_SOURCES, FuzzGenerator, legacy_corpus_entries

    generator = FuzzGenerator(seed=QOS_SEED)
    generated = []
    while len(generated) < QOS_GENERATED_PER_CLASS:
        case = generator.next_case()
        if case.kind == "ok":
            generated.append(case)
    pool = [(case.system, case.language, case.source, case.fuel) for case in generated]
    for case in legacy_corpus_entries(depths=QOS_LEGACY_DEPTHS):
        pool.append((case.system, case.language, case.source, case.fuel))
    knot_language, knot_source = DIVERGENT_SOURCES["refs"]
    pool.append(("refs", knot_language, knot_source, QOS_BALLAST_FUEL))
    return pool


def make_qos_requests():
    """The mixed-tenant batch: one request per (case, priority class).

    Classes are interleaved case-by-case (not block-by-block) so no class
    gets a positional head start on the event loop.
    """
    requests = []
    for index, (system, language, source, fuel) in enumerate(_qos_case_pool()):
        for priority in QOS_CLASSES:
            requests.append(
                Request(
                    language=language,
                    source=source,
                    system=system,
                    fuel=fuel,
                    priority=priority,
                    request_id=f"qos-{priority}-{index}",
                )
            )
    return requests


def collect_qos_report() -> dict:
    """Weighted multi-tenant serving: per-class p50/p99 under contention.

    Gates: (1) weighted interleaving is observably identical to the
    sequential baseline — priority shapes latency, never outcomes; (2) the
    bounded-latency slice budget survives weighted scheduling; (3) under
    contention, high-priority p99 is strictly below best-effort p99.
    """
    scheduler = make_default_scheduler(slice_steps=QOS_SLICE_STEPS)
    requests = make_qos_requests()
    scheduler.warm_cache(requests)

    sequential = scheduler.serve_sequential(requests)
    interleaved = scheduler.serve(requests)
    mismatches = [
        request.request_id
        for request, seq, inter in zip(requests, sequential, interleaved)
        if _observable(seq) != _observable(inter)
    ]
    slice_violations = _slice_budget_violations(interleaved, QOS_SLICE_STEPS)

    passes = [interleaved]
    for _ in range(QOS_REPEATS - 1):
        passes.append(scheduler.serve(requests))

    class_stats = {}
    for priority in QOS_CLASSES:
        p50s, p99s, means = [], [], []
        for responses in passes:
            latencies = [
                response.run_seconds
                for response in responses
                if response.request.priority == priority
            ]
            p50s.append(_percentile(latencies, 50))
            p99s.append(_percentile(latencies, 99))
            means.append(sum(latencies) / len(latencies))
        class_stats[priority] = {
            "weight": PRIORITY_WEIGHTS[priority],
            "count": sum(1 for request in requests if request.priority == priority),
            "p50_ms": _percentile(p50s, 50) * 1e3,
            "p99_ms": _percentile(p99s, 50) * 1e3,  # median across passes
            "mean_ms": _percentile(means, 50) * 1e3,
        }
    qos_ok = (
        not mismatches
        and not slice_violations
        and class_stats["high"]["p99_ms"] < class_stats["best-effort"]["p99_ms"]
    )
    return {
        "seed": QOS_SEED,
        "slice_steps": QOS_SLICE_STEPS,
        "repeats": QOS_REPEATS,
        "requests": len(requests),
        "tenants_per_class": len(requests) // len(QOS_CLASSES),
        "classes": class_stats,
        "results_match": not mismatches,
        "mismatches": mismatches,
        "slice_budget_ok": not slice_violations,
        "slice_budget_violations": slice_violations,
        "ok": qos_ok,
    }


def collect_json_report() -> dict:
    scheduler = make_default_scheduler(slice_steps=SLICE_STEPS)
    requests = make_requests()
    scheduler.warm_cache(requests)

    # One untimed pass per mode settles the machine-code memos, then compare
    # outcomes: interleaving must be observably invisible.
    sequential = scheduler.serve_sequential(requests)
    interleaved = scheduler.serve(requests)
    mismatches = [
        request.request_id
        for request, seq, inter in zip(requests, sequential, interleaved)
        if _observable(seq) != _observable(inter)
    ]

    sequential_seconds = _best_of(lambda: scheduler.serve_sequential(requests))
    interleaved_seconds = _best_of(lambda: scheduler.serve(requests))

    # Oracle-heavy batch at a small slice budget: every oracle must advance
    # in bounded turns, and interleaving must stay observably invisible.
    oracle_scheduler = make_default_scheduler(slice_steps=ORACLE_SLICE_STEPS)
    oracle_requests = make_oracle_requests()
    oracle_sequential = oracle_scheduler.serve_sequential(oracle_requests)
    oracle_interleaved = oracle_scheduler.serve(oracle_requests)
    oracle_mismatches = [
        request.request_id
        for request, seq, inter in zip(oracle_requests, oracle_sequential, oracle_interleaved)
        if _observable(seq) != _observable(inter)
    ]
    slice_violations = _slice_budget_violations(interleaved, SLICE_STEPS)
    slice_violations += _slice_budget_violations(oracle_interleaved, ORACLE_SLICE_STEPS)
    oracle_seconds = _best_of(lambda: oracle_scheduler.serve(oracle_requests))

    return {
        "benchmark": "serving",
        "requests": len(requests),
        "slice_steps": SLICE_STEPS,
        "repeats": REPEATS,
        "sequential_seconds": sequential_seconds,
        "interleaved_seconds": interleaved_seconds,
        "interleaved_vs_sequential": interleaved_seconds / sequential_seconds,
        "throughput_rps": len(requests) / interleaved_seconds,
        "sequential_throughput_rps": len(requests) / sequential_seconds,
        "results_match": not mismatches,
        "mismatches": mismatches,
        "oracle_requests": len(oracle_requests),
        "oracle_slice_steps": ORACLE_SLICE_STEPS,
        "oracle_interleaved_seconds": oracle_seconds,
        "oracle_throughput_rps": len(oracle_requests) / oracle_seconds,
        "oracle_results_match": not oracle_mismatches,
        "oracle_mismatches": oracle_mismatches,
        "slice_budget_tolerance": SLICE_BUDGET_TOLERANCE,
        "slice_budget_ok": not slice_violations,
        "slice_budget_violations": slice_violations,
        "oracle_per_request": [
            {
                "id": response.request.request_id,
                "backend": response.backend,
                "ok": response.ok,
                "steps": response.steps,
                "slices": response.slices,
            }
            for response in oracle_interleaved
        ],
        "per_request": [
            {
                "id": response.request.request_id,
                "system": response.system,
                "backend": response.backend,
                "fuel": response.request.fuel,
                "ok": response.ok,
                "failure": None if response.result is None else str(response.result.failure),
                "steps": response.steps,
                "slices": response.slices,
                "cache_hit": response.cache_hit,
            }
            for response in interleaved
        ],
    }


# -- pytest smoke entry (collected by the CI benchmark pass) -------------------


def test_interleaved_matches_sequential():
    """Interleaving a small mixed batch is observably identical to sequential."""
    scheduler = make_default_scheduler(slice_steps=64)
    requests = make_requests(deep=5, shallow=3)
    sequential = scheduler.serve_sequential(requests)
    interleaved = scheduler.serve(requests)
    assert [_observable(r) for r in interleaved] == [_observable(r) for r in sequential]
    assert sum(1 for r in interleaved if r.ok) == len(requests) - 1  # only the starved one fails
    starved = next(r for r in interleaved if r.request.request_id == "affine-starved")
    assert str(starved.result.failure) == "out_of_fuel"
    assert not _slice_budget_violations(interleaved, 64)


def test_oracle_batch_respects_the_slice_budget():
    """Every oracle backend advances in bounded slices, matching sequential."""
    scheduler = make_default_scheduler(slice_steps=32)
    requests = make_oracle_requests(deep=8)
    sequential = scheduler.serve_sequential(requests)
    interleaved = scheduler.serve(requests)
    assert [_observable(r) for r in interleaved] == [_observable(r) for r in sequential]
    assert all(r.ok for r in interleaved)
    assert not _slice_budget_violations(interleaved, 32)
    deep_oracles = [r for r in interleaved if r.request.backend is not None and r.steps > 32]
    assert deep_oracles and all(r.slices > 1 for r in deep_oracles)


def main(argv) -> int:
    check = "--check" in argv
    with_pool = "--pool" in argv
    with_chaos = "--chaos" in argv
    with_net = "--net" in argv
    with_qos = "--qos" in argv
    output = JSON_REPORT
    if "--output" in argv:
        output = argv[argv.index("--output") + 1]
    report = collect_json_report()
    report["checkpoint"] = collect_checkpoint_report()
    if with_pool:
        report["pool"] = collect_pool_report()
        report["checkpoint"]["migration"] = collect_migration_report()
    if with_chaos:
        report["chaos"] = collect_chaos_report()
    if with_net:
        report["net"] = collect_net_report()
        if with_chaos:
            report["net"]["chaos"] = collect_net_chaos_report()
    if with_qos:
        report["qos"] = collect_qos_report()
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    ratio = report["interleaved_vs_sequential"]
    print(
        f"{report['requests']} mixed requests: sequential {report['sequential_seconds'] * 1e3:.1f}ms, "
        f"interleaved {report['interleaved_seconds'] * 1e3:.1f}ms "
        f"({report['throughput_rps']:.0f} req/s, overhead ratio {ratio:.2f}x)"
    )
    if with_pool:
        pool_report = report["pool"]
        cache = pool_report["repeated_program_cache"]
        print(
            f"pool ({pool_report['workers']} workers): batch {pool_report['pool_seconds'] * 1e3:.1f}ms "
            f"({pool_report['throughput_rps']:.0f} req/s), shard load {pool_report['shard_load']}, "
            f"shared cache: {cache['publishes']} published, {cache['hits']} hits "
            f"({cache['cross_worker_hits']} cross-worker)"
        )
    checkpoint_report = report["checkpoint"]
    worst = max(
        checkpoint_report["snapshot_restore"],
        key=lambda row: row["snapshot_ms"] + row["restore_ms"],
        default=None,
    )
    print(
        f"checkpoint: {len(checkpoint_report['snapshot_restore'])} backends snapshot+restore"
        + (
            f" (worst {worst['system']}/{worst['backend']}: "
            f"{worst['snapshot_ms']:.2f}ms reify, {worst['restore_ms']:.2f}ms restore, "
            f"{worst['snapshot_bytes']} bytes)"
            if worst
            else ""
        )
        + f"; {checkpoint_report['preempted']} preempted and resumed in "
        f"{checkpoint_report['preempt_resume_seconds'] * 1e3:.1f}ms"
    )
    if with_pool:
        migration = checkpoint_report["migration"]
        print(
            f"migration: {migration['migrated']}/{migration['victims']} in-flight requests "
            f"migrated off the crashed shard in {migration['seconds'] * 1e3:.1f}ms "
            f"({migration['migrations']} migration(s), {migration['worker_crashes']} crash(es))"
        )
    if with_net:
        net = report["net"]
        join = net["join"]
        rebalance = net["rebalance"]
        print(
            f"net ({net['workers']} endpoints): batch {net['net_seconds'] * 1e3:.1f}ms "
            f"({net['throughput_rps']:.0f} req/s), endpoint load {net['endpoint_load']}; "
            f"join moved {join['moved']}/{join['probe_keys']} keys "
            f"({join['remap_fraction']:.2f}, bound {join['remap_bound']:.2f}), "
            f"new member warm={join['new_member_warm']}; "
            f"skew imbalance {rebalance['balanced_imbalance']:.1f}x balanced vs "
            f"{rebalance['static_imbalance']:.1f}x static ({rebalance['diverted']} diverted)"
        )
        if with_chaos:
            net_chaos = net["chaos"]
            print(
                f"net chaos (seed {net_chaos['seed']}): drop on endpoint "
                f"{net_chaos['drop']['victim']} -> {net_chaos['drop']['drops']} drop(s), "
                f"{net_chaos['drop']['migrations']} migration(s) in "
                f"{net_chaos['drop']['seconds'] * 1e3:.1f}ms; slow link -> "
                f"{net_chaos['slow']['timeouts']} timeout(s), "
                f"{net_chaos['slow']['migrations'] + net_chaos['slow']['redispatches']} recovered"
            )
    if with_chaos:
        chaos = report["chaos"]
        print(
            f"chaos (seed {chaos['seed']}): {len(chaos['fault_kinds'])} fault kinds in "
            f"{chaos['seconds'] * 1e3:.1f}ms -- {chaos['worker_crashes']} crash(es), "
            f"{chaos['migrations']} migration(s), {chaos['redispatches']} redispatch(es), "
            f"deadline_exceeded={chaos['deadline_exceeded']}, "
            f"overload shed {chaos['overload']['shed']}, "
            f"store faults fired {chaos['store_faults']['fired']}"
        )
    if with_qos:
        qos = report["qos"]
        per_class = ", ".join(
            f"{name}: p50 {stats['p50_ms']:.1f}ms / p99 {stats['p99_ms']:.1f}ms (w{stats['weight']})"
            for name, stats in qos["classes"].items()
        )
        print(
            f"qos ({qos['requests']} requests, {qos['tenants_per_class']} tenants/class, "
            f"slice {qos['slice_steps']}, seed {qos['seed']}): {per_class}"
        )
    print(f"wrote {output}")

    failed = False
    if report["mismatches"]:
        print(
            "MISMATCH: interleaved results diverge from sequential on: "
            + ", ".join(report["mismatches"]),
            file=sys.stderr,
        )
        failed = True
    if report["oracle_mismatches"]:
        print(
            "MISMATCH: oracle-heavy interleaved results diverge from sequential on: "
            + ", ".join(report["oracle_mismatches"]),
            file=sys.stderr,
        )
        failed = True
    if not report["slice_budget_ok"]:
        print(
            "REGRESSION: backends exceeded the per-turn slice budget "
            f"(steps > slices x slice_steps x {SLICE_BUDGET_TOLERANCE}): "
            + ", ".join(
                f"{v['id']} ({v['backend']}: {v['steps']} steps in {v['slices']} slices of {v['slice_steps']})"
                for v in report["slice_budget_violations"]
            ),
            file=sys.stderr,
        )
        failed = True
    if ratio > 2.0:
        print(
            f"REGRESSION: interleaved batch took {ratio:.2f}x the sequential baseline (limit 2.0x)",
            file=sys.stderr,
        )
        failed = True
    if not checkpoint_report["snapshot_restore_ok"]:
        print(
            "REGRESSION: snapshot/restore measured only "
            f"{len(checkpoint_report['snapshot_restore'])} of "
            f"{checkpoint_report['snapshot_backends_expected']} snapshot-capable backends",
            file=sys.stderr,
        )
        failed = True
    if not checkpoint_report["preempt_resume_ok"]:
        print(
            "REGRESSION: preempt -> resume diverged from the sequential baseline "
            f"(preempted={checkpoint_report['preempted']}, mismatches: "
            + ", ".join(checkpoint_report["preempt_mismatches"])
            + ")",
            file=sys.stderr,
        )
        failed = True
    if with_pool:
        migration = checkpoint_report["migration"]
        if not migration["ok"]:
            print(
                "REGRESSION: crashed-shard batch failed to migrate "
                f"(migrated={migration['migrated']}/{migration['victims']}, "
                f"migrations={migration['migrations']}, mismatches: "
                + ", ".join(migration["mismatches"])
                + ")",
                file=sys.stderr,
            )
            failed = True
        pool_report = report["pool"]
        if pool_report["mismatches"]:
            print(
                "MISMATCH: pooled results diverge from sequential on: "
                + ", ".join(pool_report["mismatches"]),
                file=sys.stderr,
            )
            failed = True
        if not pool_report["repeated_program_ok"]:
            print("REGRESSION: repeated-program pool batch had failing requests", file=sys.stderr)
            failed = True
        if pool_report["cross_worker_cache_hits"] < 1 or pool_report["publishes"] < 1:
            print(
                "REGRESSION: the repeated-program batch recorded no cross-worker "
                f"pipeline-cache hit (publishes={pool_report['publishes']}, "
                f"cross_worker_hits={pool_report['cross_worker_cache_hits']})",
                file=sys.stderr,
            )
            failed = True
    if with_net:
        net = report["net"]
        if net["mismatches"]:
            print(
                "MISMATCH: network-served results diverge from sequential on: "
                + ", ".join(net["mismatches"]),
                file=sys.stderr,
            )
            failed = True
        if not net["join"]["ok"]:
            print(
                "REGRESSION: the worker join remapped placements badly "
                f"(moved={net['join']['moved']}/{net['join']['probe_keys']}, "
                f"fraction={net['join']['remap_fraction']:.2f} "
                f"(bound {net['join']['remap_bound']:.2f}), "
                f"moved_only_to_joiner={net['join']['moved_only_to_joiner']})",
                file=sys.stderr,
            )
            failed = True
        if not net["join"]["new_member_warm"]:
            print(
                "REGRESSION: the joining endpoint recompiled a published program "
                "instead of warming from the shared store",
                file=sys.stderr,
            )
            failed = True
        if not net["rebalance"]["ok"]:
            print(
                "REGRESSION: load-aware dispatch did not beat static placement under skew "
                f"(balanced={net['rebalance']['balanced_imbalance']:.1f}x, "
                f"static={net['rebalance']['static_imbalance']:.1f}x, mismatches: "
                + (", ".join(net["rebalance"]["mismatches"]) or "none")
                + ")",
                file=sys.stderr,
            )
            failed = True
        if with_chaos and not net["chaos"]["ok"]:
            print(
                "REGRESSION: the network chaos section failed "
                f"(drop: {json.dumps(net['chaos']['drop'])}; "
                f"slow: {json.dumps(net['chaos']['slow'])})",
                file=sys.stderr,
            )
            failed = True
    if with_chaos:
        chaos = report["chaos"]
        if not chaos["ok"]:
            print(
                "REGRESSION: the fault-injected batch diverged from the fault-free "
                f"baseline (mismatches: {', '.join(chaos['mismatches']) or 'none'}; "
                f"policy_stopped={chaos['policy_stopped']}, "
                f"migrations={chaos['migrations']}, redispatches={chaos['redispatches']}, "
                f"deadline_has_checkpoint={chaos['deadline_has_checkpoint']}, "
                f"deadline_retry_matches_baseline={chaos['deadline_retry_matches_baseline']}, "
                f"slice_budget_ok={chaos['slice_budget_ok']})",
                file=sys.stderr,
            )
            failed = True
        if not chaos["overload"]["ok"]:
            print(
                "REGRESSION: overload shedding was not structural/deterministic "
                f"(shed={chaos['overload']['shed']}, "
                f"tail_rejected_structurally={chaos['overload']['tail_rejected_structurally']}, "
                f"head_mismatches: {', '.join(chaos['overload']['head_mismatches']) or 'none'})",
                file=sys.stderr,
            )
            failed = True
        if not chaos["store_faults"]["ok"]:
            print(
                "REGRESSION: checkpoint-store faults were not handled structurally: "
                + json.dumps(chaos["store_faults"]),
                file=sys.stderr,
            )
            failed = True
    if with_qos:
        qos = report["qos"]
        if qos["mismatches"]:
            print(
                "MISMATCH: weighted QoS results diverge from sequential on: "
                + ", ".join(qos["mismatches"]),
                file=sys.stderr,
            )
            failed = True
        if not qos["slice_budget_ok"]:
            print(
                "REGRESSION: weighted scheduling broke the slice budget: "
                + json.dumps(qos["slice_budget_violations"]),
                file=sys.stderr,
            )
            failed = True
        if not qos["classes"]["high"]["p99_ms"] < qos["classes"]["best-effort"]["p99_ms"]:
            print(
                "REGRESSION: high-priority p99 did not beat best-effort under contention "
                f"(high {qos['classes']['high']['p99_ms']:.2f}ms >= "
                f"best-effort {qos['classes']['best-effort']['p99_ms']:.2f}ms)",
                file=sys.stderr,
            )
            failed = True
    return 1 if (check and failed) else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
