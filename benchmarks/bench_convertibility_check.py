"""E2 / E12 — the bounded logical-relation checkers themselves.

The realizability models are executable artifacts; this harness measures the
cost of deciding the convertibility-soundness statements (Lemma 3.1 and its
§4/§5 analogues) and of the per-case-study type-safety sweeps, as a function
of the step budget.
"""

import pytest

from repro.interop_affine import check_convertibility_soundness as check_affine_convertibility
from repro.interop_affine import make_system as make_affine_system
from repro.interop_l3 import check_type_safety as check_l3_type_safety
from repro.interop_l3 import make_system as make_l3_system
from repro.interop_refs import RefsModel
from repro.interop_refs import check_convertibility_soundness as check_refs_convertibility
from repro.interop_refs import check_fundamental_property, make_system as make_refs_system


@pytest.fixture(scope="module")
def refs_system():
    return make_refs_system()


@pytest.fixture(scope="module")
def affine_system():
    return make_affine_system()


@pytest.fixture(scope="module")
def l3_system():
    return make_l3_system()


@pytest.mark.parametrize("step_budget", [32, 64, 128])
def test_refs_convertibility_soundness(benchmark, refs_system, step_budget):
    model = RefsModel()
    report = benchmark(
        lambda: check_refs_convertibility(system=refs_system, model=model, step_budget=step_budget)
    )
    assert report.ok
    benchmark.extra_info["membership_checks"] = report.checked
    benchmark.extra_info["step_budget"] = step_budget


def test_refs_fundamental_property(benchmark, refs_system):
    report = benchmark(lambda: check_fundamental_property(system=refs_system))
    assert report.ok
    benchmark.extra_info["membership_checks"] = report.checked


def test_affine_convertibility_soundness(benchmark, affine_system):
    report = benchmark(lambda: check_affine_convertibility(system=affine_system))
    assert report.ok
    benchmark.extra_info["membership_checks"] = report.checked


def test_l3_type_safety_sweep(benchmark, l3_system):
    report = benchmark(lambda: check_l3_type_safety(system=l3_system))
    assert report.ok
    benchmark.extra_info["membership_checks"] = report.checked
